(** Persistent model artifacts (see artifact.mli and DESIGN.md §9). *)

(* v2 (DESIGN.md §13): adds the optional compiled fast-path summary.
   Strict versioning — v1 artifacts are rejected with
   [Version_unsupported] and must be recompiled. *)
let format_version = 2
let magic = "AUTOTYPE-MODEL"
let extension = ".model"

type provenance = {
  query : string;
  type_id : string option;
  seed : int;
  pipeline : Autotype_core.Pipeline.config;
  strategy : Autotype_core.Negative.strategy option;
  candidates_tried : int;
  repos_searched : int;
}

type t = {
  provenance : provenance;
  candidate : Repolib.Candidate.t;
  driver : Minilang.Interp.config;
  dnf : Autotype_core.Dnf.result;
  summary : Absint.Domain.compiled option;
}

let m_saves = Telemetry.counter "model.saves"
let m_loads = Telemetry.counter "model.loads"
let m_load_failures = Telemetry.counter "model.load_failures"

(* ------------------------------------------------------------------ *)
(* Compile: exporting                                                  *)
(* ------------------------------------------------------------------ *)

(* Ship only what execution needs: sources and popularity metadata.
   The README is dead weight and [truth] is evaluation ground truth
   that must not leak into a served artifact. *)
let slim_repo (repo : Repolib.Repo.t) : Repolib.Repo.t =
  Repolib.Repo.make ~readme:"" ~stars:repo.Repolib.Repo.stars ~truth:[]
    repo.Repolib.Repo.repo_name repo.Repolib.Repo.description
    repo.Repolib.Repo.files

let of_synthesis ~provenance (syn : Autotype_core.Synthesis.t) : t =
  let candidate = syn.Autotype_core.Synthesis.candidate in
  {
    provenance;
    candidate =
      { candidate with
        Repolib.Candidate.repo = slim_repo candidate.Repolib.Candidate.repo };
    driver = Repolib.Driver.default_config;
    dnf = syn.Autotype_core.Synthesis.dnf;
    (* Resolved before slimming: absint facts are memoized against the
       original repo (the slimmed one has identical sources anyway). *)
    summary = Autotype_core.Summarize.compile syn;
  }

let provenance_of_compiled (c : Autotype_core.Pipeline.compiled) : provenance =
  let o = c.Autotype_core.Pipeline.c_outcome in
  let config = c.Autotype_core.Pipeline.c_config in
  {
    query = o.Autotype_core.Pipeline.query;
    type_id = None;
    seed = config.Autotype_core.Pipeline.seed;
    pipeline = config;
    strategy = o.Autotype_core.Pipeline.strategy_used;
    candidates_tried = o.Autotype_core.Pipeline.candidates_tried;
    repos_searched = o.Autotype_core.Pipeline.repos_searched;
  }

let of_compiled (c : Autotype_core.Pipeline.compiled) : t option =
  let provenance = provenance_of_compiled c in
  Option.map
    (of_synthesis ~provenance)
    (Autotype_core.Pipeline.best c.Autotype_core.Pipeline.c_outcome)

let all_of_compiled (c : Autotype_core.Pipeline.compiled) : t list =
  let provenance = provenance_of_compiled c in
  List.map
    (of_synthesis ~provenance)
    (Autotype_core.Pipeline.synthesized c.Autotype_core.Pipeline.c_outcome)

let with_type_id id t =
  { t with provenance = { t.provenance with type_id = Some id } }

(* ------------------------------------------------------------------ *)
(* Serve: importing                                                    *)
(* ------------------------------------------------------------------ *)

let to_synthesis (t : t) : Autotype_core.Synthesis.t =
  Autotype_core.Synthesis.make t.candidate t.dnf

let slug s =
  let b = Buffer.create (String.length s) in
  let last_dash = ref true in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | '0' .. '9' ->
        Buffer.add_char b c;
        last_dash := false
      | 'A' .. 'Z' ->
        Buffer.add_char b (Char.lowercase_ascii c);
        last_dash := false
      | _ ->
        if not !last_dash then begin
          Buffer.add_char b '-';
          last_dash := true
        end)
    s;
  let s = Buffer.contents b in
  let n = String.length s in
  if n > 0 && s.[n - 1] = '-' then String.sub s 0 (n - 1) else s

let key t =
  match t.provenance.type_id with
  | Some id -> id
  | None ->
    let s = slug t.provenance.query in
    if s = "" then "model" else s

(* ------------------------------------------------------------------ *)
(* JSON encoding                                                       *)
(* ------------------------------------------------------------------ *)

type artifact = t  (** alias: [open Jsonx] below shadows [t] *)

open Jsonx

let json_of_invocation (inv : Repolib.Candidate.invocation) : Jsonx.t =
  let obj kind fields = Obj (("kind", Str kind) :: fields) in
  match inv with
  | Repolib.Candidate.Direct -> obj "direct" []
  | Repolib.Candidate.Class_then_method (c, m) ->
    obj "class_then_method" [ ("class", Str c); ("method", Str m) ]
  | Repolib.Candidate.Ctor_then_method (c, m) ->
    obj "ctor_then_method" [ ("class", Str c); ("method", Str m) ]
  | Repolib.Candidate.Via_argv f -> obj "via_argv" [ ("func", Str f) ]
  | Repolib.Candidate.Via_stdin f -> obj "via_stdin" [ ("func", Str f) ]
  | Repolib.Candidate.Via_file f -> obj "via_file" [ ("func", Str f) ]
  | Repolib.Candidate.Script_var (path, var) ->
    obj "script_var" [ ("path", Str path); ("var", Str var) ]
  | Repolib.Candidate.Script_argv path ->
    obj "script_argv" [ ("path", Str path) ]
  | Repolib.Candidate.Script_stdin path ->
    obj "script_stdin" [ ("path", Str path) ]
  | Repolib.Candidate.Split_call (f, sep, k) ->
    obj "split_call"
      [ ("func", Str f); ("sep", Int (Char.code sep)); ("arity", Int k) ]

let invocation_of_json j : Repolib.Candidate.invocation =
  let str k = to_str (member k j) in
  match to_str (member "kind" j) with
  | "direct" -> Repolib.Candidate.Direct
  | "class_then_method" ->
    Repolib.Candidate.Class_then_method (str "class", str "method")
  | "ctor_then_method" ->
    Repolib.Candidate.Ctor_then_method (str "class", str "method")
  | "via_argv" -> Repolib.Candidate.Via_argv (str "func")
  | "via_stdin" -> Repolib.Candidate.Via_stdin (str "func")
  | "via_file" -> Repolib.Candidate.Via_file (str "func")
  | "script_var" -> Repolib.Candidate.Script_var (str "path", str "var")
  | "script_argv" -> Repolib.Candidate.Script_argv (str "path")
  | "script_stdin" -> Repolib.Candidate.Script_stdin (str "path")
  | "split_call" ->
    let sep = to_int (member "sep" j) in
    if sep < 0 || sep > 255 then raise (Decode_error "split_call sep range");
    Repolib.Candidate.Split_call
      (str "func", Char.chr sep, to_int (member "arity" j))
  | k -> raise (Decode_error ("unknown invocation kind " ^ k))

let json_of_candidate (c : Repolib.Candidate.t) : Jsonx.t =
  let repo = c.Repolib.Candidate.repo in
  Obj
    [ ("repo",
       Obj
         [ ("name", Str repo.Repolib.Repo.repo_name);
           ("description", Str repo.Repolib.Repo.description);
           ("stars", Int repo.Repolib.Repo.stars);
           ("files",
            List
              (List.map
                 (fun (f : Repolib.Repo.file) ->
                   Obj
                     [ ("path", Str f.Repolib.Repo.path);
                       ("source", Str f.Repolib.Repo.source) ])
                 repo.Repolib.Repo.files)) ]);
      ("file", Str c.Repolib.Candidate.file);
      ("func_name", Str c.Repolib.Candidate.func_name);
      ("doc_text", Str c.Repolib.Candidate.doc_text);
      ("invocation", json_of_invocation c.Repolib.Candidate.invocation) ]

let candidate_of_json j : Repolib.Candidate.t =
  let rj = member "repo" j in
  let files =
    List.map
      (fun fj ->
        { Repolib.Repo.path = to_str (member "path" fj);
          source = to_str (member "source" fj) })
      (to_list (member "files" rj))
  in
  let repo =
    Repolib.Repo.make ~readme:"" ~stars:(to_int (member "stars" rj)) ~truth:[]
      (to_str (member "name" rj))
      (to_str (member "description" rj))
      files
  in
  {
    Repolib.Candidate.repo;
    file = to_str (member "file" j);
    func_name = to_str (member "func_name" j);
    doc_text = to_str (member "doc_text" j);
    invocation = invocation_of_json (member "invocation" j);
  }

let json_of_ret (r : Minilang.Trace.ret_abstract) : Jsonx.t =
  Str
    (match r with
     | Minilang.Trace.Rbool true -> "true"
     | Minilang.Trace.Rbool false -> "false"
     | Minilang.Trace.Rzero -> "zero"
     | Minilang.Trace.Rnonzero -> "nonzero"
     | Minilang.Trace.Rnone -> "none"
     | Minilang.Trace.Rnotnone -> "notnone"
     | Minilang.Trace.Rvoid -> "void")

let ret_of_json j : Minilang.Trace.ret_abstract =
  match to_str j with
  | "true" -> Minilang.Trace.Rbool true
  | "false" -> Minilang.Trace.Rbool false
  | "zero" -> Minilang.Trace.Rzero
  | "nonzero" -> Minilang.Trace.Rnonzero
  | "none" -> Minilang.Trace.Rnone
  | "notnone" -> Minilang.Trace.Rnotnone
  | "void" -> Minilang.Trace.Rvoid
  | s -> raise (Decode_error ("unknown return abstraction " ^ s))

let json_of_literal (l : Autotype_core.Feature.literal) : Jsonx.t =
  match l with
  | Autotype_core.Feature.Branch_is (site, taken) ->
    Obj
      [ ("t", Str "branch");
        ("file", Str site.Minilang.Trace.s_file);
        ("line", Int site.Minilang.Trace.s_line);
        ("taken", Bool taken) ]
  | Autotype_core.Feature.Return_is (site, ret) ->
    Obj
      [ ("t", Str "return");
        ("file", Str site.Minilang.Trace.s_file);
        ("line", Int site.Minilang.Trace.s_line);
        ("ret", json_of_ret ret) ]
  | Autotype_core.Feature.Raised kind ->
    Obj [ ("t", Str "raised"); ("kind", Str kind) ]

let literal_of_json j : Autotype_core.Feature.literal =
  let site () =
    { Minilang.Trace.s_file = to_str (member "file" j);
      s_line = to_int (member "line" j) }
  in
  match to_str (member "t" j) with
  | "branch" ->
    Autotype_core.Feature.Branch_is (site (), to_bool (member "taken" j))
  | "return" ->
    Autotype_core.Feature.Return_is (site (), ret_of_json (member "ret" j))
  | "raised" -> Autotype_core.Feature.Raised (to_str (member "kind" j))
  | t -> raise (Decode_error ("unknown literal tag " ^ t))

let json_of_clauses (cs : Autotype_core.Dnf.clause list) : Jsonx.t =
  List (List.map (fun c -> List (List.map json_of_literal c)) cs)

let clauses_of_json j : Autotype_core.Dnf.clause list =
  List.map (fun c -> List.map literal_of_json (to_list c)) (to_list j)

let json_of_dnf (d : Autotype_core.Dnf.result) : Jsonx.t =
  let n_total = d.Autotype_core.Dnf.n_pos + d.Autotype_core.Dnf.n_neg in
  let coverage_indices bs =
    let rec go i acc =
      if i < 0 then acc
      else go (i - 1) (if Autotype_core.Bitset.mem bs i then Int i :: acc else acc)
    in
    List (go (n_total - 1) [])
  in
  Obj
    [ ("n_pos", Int d.Autotype_core.Dnf.n_pos);
      ("n_neg", Int d.Autotype_core.Dnf.n_neg);
      ("cov_p", Int d.Autotype_core.Dnf.cov_p);
      ("cov_n", Int d.Autotype_core.Dnf.cov_n);
      ("clauses", json_of_clauses d.Autotype_core.Dnf.clauses);
      ("expanded", json_of_clauses d.Autotype_core.Dnf.expanded);
      ("groups",
       List
         (List.map
            (fun (g : Autotype_core.Dnf.group) ->
              Obj
                [ ("members", List (List.map json_of_literal g.Autotype_core.Dnf.members));
                  ("coverage", coverage_indices g.Autotype_core.Dnf.coverage) ])
            d.Autotype_core.Dnf.groups)) ]

let dnf_of_json j : Autotype_core.Dnf.result =
  let n_pos = to_int (member "n_pos" j) in
  let n_neg = to_int (member "n_neg" j) in
  let n_total = n_pos + n_neg in
  let groups =
    List.map
      (fun gj ->
        let members = List.map literal_of_json (to_list (member "members" gj)) in
        let coverage = Autotype_core.Bitset.create (max 1 n_total) in
        List.iter
          (fun idx ->
            let i = to_int idx in
            if i < 0 || i >= n_total then
              raise (Decode_error "coverage index out of range");
            Autotype_core.Bitset.set coverage i)
          (to_list (member "coverage" gj));
        match members with
        | [] -> raise (Decode_error "empty literal group")
        | representative :: _ ->
          { Autotype_core.Dnf.representative; members; coverage })
      (to_list (member "groups" j))
  in
  {
    Autotype_core.Dnf.clauses = clauses_of_json (member "clauses" j);
    expanded = clauses_of_json (member "expanded" j);
    groups;
    cov_p = to_int (member "cov_p" j);
    cov_n = to_int (member "cov_n" j);
    n_pos;
    n_neg;
  }

let json_of_pipeline_config (c : Autotype_core.Pipeline.config) : Jsonx.t =
  Obj
    [ ("k", Int c.Autotype_core.Pipeline.k);
      ("theta", Float c.Autotype_core.Pipeline.theta);
      ("top_repos", Int c.Autotype_core.Pipeline.top_repos);
      ("neg_per_positive", Int c.Autotype_core.Pipeline.neg_per_positive);
      ("mutation_p", Float c.Autotype_core.Pipeline.mutation_p);
      ("found_fraction", Float c.Autotype_core.Pipeline.found_fraction);
      ("seed", Int c.Autotype_core.Pipeline.seed);
      ("staticcheck", Bool c.Autotype_core.Pipeline.staticcheck) ]

let pipeline_config_of_json j : Autotype_core.Pipeline.config =
  {
    Autotype_core.Pipeline.k = to_int (member "k" j);
    theta = to_float (member "theta" j);
    top_repos = to_int (member "top_repos" j);
    neg_per_positive = to_int (member "neg_per_positive" j);
    mutation_p = to_float (member "mutation_p" j);
    found_fraction = to_float (member "found_fraction" j);
    seed = to_int (member "seed" j);
    staticcheck = to_bool (member "staticcheck" j);
  }

let json_of_provenance (p : provenance) : Jsonx.t =
  Obj
    [ ("query", Str p.query);
      ("type_id", match p.type_id with Some id -> Str id | None -> Null);
      ("seed", Int p.seed);
      ("pipeline", json_of_pipeline_config p.pipeline);
      ("strategy",
       (match p.strategy with
        | Some s -> Str (Autotype_core.Negative.strategy_to_string s)
        | None -> Null));
      ("candidates_tried", Int p.candidates_tried);
      ("repos_searched", Int p.repos_searched) ]

let provenance_of_json j : provenance =
  {
    query = to_str (member "query" j);
    type_id =
      (match member "type_id" j with Null -> None | v -> Some (to_str v));
    seed = to_int (member "seed" j);
    pipeline = pipeline_config_of_json (member "pipeline" j);
    strategy =
      (match member "strategy" j with
       | Null -> None
       | Str "S1" -> Some Autotype_core.Negative.S1
       | Str "S2" -> Some Autotype_core.Negative.S2
       | Str "S3" -> Some Autotype_core.Negative.S3
       | Str s -> raise (Decode_error ("unknown strategy " ^ s))
       | _ -> raise (Decode_error "strategy must be a string or null"));
    candidates_tried = to_int (member "candidates_tried" j);
    repos_searched = to_int (member "repos_searched" j);
  }

(* --- compiled fast-path summary (v2) ------------------------------ *)

let json_of_deriv (d : Absint.Domain.deriv) : Jsonx.t =
  match d with
  | Absint.Domain.Strip (chars, left, right) ->
    Obj
      [ ("t", Str "strip");
        ("chars", match chars with Some c -> Str c | None -> Null);
        ("left", Bool left);
        ("right", Bool right) ]
  | Absint.Domain.Lower -> Obj [ ("t", Str "lower") ]
  | Absint.Domain.Upper -> Obj [ ("t", Str "upper") ]
  | Absint.Domain.Replace (o, n) ->
    Obj [ ("t", Str "replace"); ("old", Str o); ("new", Str n) ]

let deriv_of_json j : Absint.Domain.deriv =
  match to_str (member "t" j) with
  | "strip" ->
    Absint.Domain.Strip
      ( (match member "chars" j with Null -> None | v -> Some (to_str v)),
        to_bool (member "left" j),
        to_bool (member "right" j) )
  | "lower" -> Absint.Domain.Lower
  | "upper" -> Absint.Domain.Upper
  | "replace" ->
    Absint.Domain.Replace (to_str (member "old" j), to_str (member "new" j))
  | t -> raise (Decode_error ("unknown deriv tag " ^ t))

let json_of_chain (ch : Absint.Domain.chain) : Jsonx.t =
  List (List.map json_of_deriv ch)

let chain_of_json j : Absint.Domain.chain =
  List.map deriv_of_json (to_list j)

let rmode_to_tag = function
  | Absint.Domain.Rmatch -> "match"
  | Absint.Domain.Rfullmatch -> "fullmatch"
  | Absint.Domain.Rsearch -> "search"

let rmode_of_tag = function
  | "match" -> Absint.Domain.Rmatch
  | "fullmatch" -> Absint.Domain.Rfullmatch
  | "search" -> Absint.Domain.Rsearch
  | t -> raise (Decode_error ("unknown regex mode " ^ t))

let cclass_to_tag = function
  | Absint.Domain.Cdigit -> "digit"
  | Absint.Domain.Calpha -> "alpha"
  | Absint.Domain.Calnum -> "alnum"
  | Absint.Domain.Cspace -> "space"

let cclass_of_tag = function
  | "digit" -> Absint.Domain.Cdigit
  | "alpha" -> Absint.Domain.Calpha
  | "alnum" -> Absint.Domain.Calnum
  | "space" -> Absint.Domain.Cspace
  | t -> raise (Decode_error ("unknown char class " ^ t))

let icmp_to_tag = function
  | Absint.Domain.Clt -> "lt"
  | Absint.Domain.Cle -> "le"
  | Absint.Domain.Cgt -> "gt"
  | Absint.Domain.Cge -> "ge"
  | Absint.Domain.Ceq -> "eq"
  | Absint.Domain.Cne -> "ne"

let icmp_of_tag = function
  | "lt" -> Absint.Domain.Clt
  | "le" -> Absint.Domain.Cle
  | "gt" -> Absint.Domain.Cgt
  | "ge" -> Absint.Domain.Cge
  | "eq" -> Absint.Domain.Ceq
  | "ne" -> Absint.Domain.Cne
  | t -> raise (Decode_error ("unknown comparison " ^ t))

let json_of_atom (a : Absint.Domain.atom) : Jsonx.t =
  match a with
  | Absint.Domain.Regex (m, pat, ch) ->
    Obj
      [ ("t", Str "regex");
        ("mode", Str (rmode_to_tag m));
        ("pat", Str pat);
        ("chain", json_of_chain ch) ]
  | Absint.Domain.Char_class (c, ch) ->
    Obj
      [ ("t", Str "cclass");
        ("class", Str (cclass_to_tag c));
        ("chain", json_of_chain ch) ]
  | Absint.Domain.Starts_with (p, ch) ->
    Obj [ ("t", Str "starts"); ("lit", Str p); ("chain", json_of_chain ch) ]
  | Absint.Domain.Ends_with (p, ch) ->
    Obj [ ("t", Str "ends"); ("lit", Str p); ("chain", json_of_chain ch) ]
  | Absint.Domain.Str_eq (lit, ch) ->
    Obj [ ("t", Str "eq"); ("lit", Str lit); ("chain", json_of_chain ch) ]
  | Absint.Domain.Contains (lit, ch) ->
    Obj [ ("t", Str "contains"); ("lit", Str lit); ("chain", json_of_chain ch) ]
  | Absint.Domain.Len_cmp (op, n, ch) ->
    Obj
      [ ("t", Str "len");
        ("op", Str (icmp_to_tag op));
        ("n", Int n);
        ("chain", json_of_chain ch) ]

let atom_of_json j : Absint.Domain.atom =
  let chain () = chain_of_json (member "chain" j) in
  match to_str (member "t" j) with
  | "regex" ->
    Absint.Domain.Regex
      (rmode_of_tag (to_str (member "mode" j)), to_str (member "pat" j),
       chain ())
  | "cclass" ->
    Absint.Domain.Char_class (cclass_of_tag (to_str (member "class" j)), chain ())
  | "starts" -> Absint.Domain.Starts_with (to_str (member "lit" j), chain ())
  | "ends" -> Absint.Domain.Ends_with (to_str (member "lit" j), chain ())
  | "eq" -> Absint.Domain.Str_eq (to_str (member "lit" j), chain ())
  | "contains" -> Absint.Domain.Contains (to_str (member "lit" j), chain ())
  | "len" ->
    Absint.Domain.Len_cmp
      (icmp_of_tag (to_str (member "op" j)), to_int (member "n" j), chain ())
  | t -> raise (Decode_error ("unknown atom tag " ^ t))

let rec json_of_guard (g : Absint.Domain.guard) : Jsonx.t =
  match g with
  | Absint.Domain.Gconst b -> Obj [ ("t", Str "const"); ("v", Bool b) ]
  | Absint.Domain.Gatom a -> Obj [ ("t", Str "atom"); ("atom", json_of_atom a) ]
  | Absint.Domain.Gnot g -> Obj [ ("t", Str "not"); ("g", json_of_guard g) ]
  | Absint.Domain.Gand (a, b) ->
    Obj [ ("t", Str "and"); ("a", json_of_guard a); ("b", json_of_guard b) ]
  | Absint.Domain.Gor (a, b) ->
    Obj [ ("t", Str "or"); ("a", json_of_guard a); ("b", json_of_guard b) ]

let rec guard_of_json j : Absint.Domain.guard =
  match to_str (member "t" j) with
  | "const" -> Absint.Domain.Gconst (to_bool (member "v" j))
  | "atom" -> Absint.Domain.Gatom (atom_of_json (member "atom" j))
  | "not" -> Absint.Domain.Gnot (guard_of_json (member "g" j))
  | "and" ->
    Absint.Domain.Gand
      (guard_of_json (member "a" j), guard_of_json (member "b" j))
  | "or" ->
    Absint.Domain.Gor
      (guard_of_json (member "a" j), guard_of_json (member "b" j))
  | t -> raise (Decode_error ("unknown guard tag " ^ t))

let rec json_of_compiled (t : Absint.Domain.compiled) : Jsonx.t =
  match t with
  | Absint.Domain.Leaf v -> Obj [ ("t", Str "leaf"); ("v", Bool v) ]
  | Absint.Domain.Node { guard; if_true; if_false } ->
    Obj
      [ ("t", Str "node");
        ("guard", json_of_guard guard);
        ("then", json_of_compiled if_true);
        ("else", json_of_compiled if_false) ]

let rec compiled_of_json j : Absint.Domain.compiled =
  match to_str (member "t" j) with
  | "leaf" -> Absint.Domain.Leaf (to_bool (member "v" j))
  | "node" ->
    Absint.Domain.Node
      {
        guard = guard_of_json (member "guard" j);
        if_true = compiled_of_json (member "then" j);
        if_false = compiled_of_json (member "else" j);
      }
  | t -> raise (Decode_error ("unknown tree tag " ^ t))

let payload_of (t : artifact) : Jsonx.t =
  Obj
    [ ("provenance", json_of_provenance t.provenance);
      ("candidate", json_of_candidate t.candidate);
      ("driver",
       Obj
         [ ("max_steps", Int t.driver.Minilang.Interp.max_steps);
           ("max_call_depth", Int t.driver.Minilang.Interp.max_call_depth) ]);
      ("dnf", json_of_dnf t.dnf);
      ("summary",
       (match t.summary with Some s -> json_of_compiled s | None -> Null)) ]

let of_payload j : artifact =
  let dj = member "driver" j in
  {
    provenance = provenance_of_json (member "provenance" j);
    candidate = candidate_of_json (member "candidate" j);
    driver =
      { Minilang.Interp.max_steps = to_int (member "max_steps" dj);
        max_call_depth = to_int (member "max_call_depth" dj) };
    dnf = dnf_of_json (member "dnf" j);
    summary =
      (match member "summary" j with
       | Null -> None
       | v -> Some (compiled_of_json v));
  }

(* ------------------------------------------------------------------ *)
(* Framing: header line + checksummed payload line                     *)
(* ------------------------------------------------------------------ *)

type load_error =
  | File_error of string
  | Not_a_model of string
  | Version_unsupported of { found : int; supported : int }
  | Checksum_mismatch of { expected : string; actual : string }
  | Malformed of string

let load_error_to_string = function
  | File_error msg -> Printf.sprintf "cannot read model artifact: %s" msg
  | Not_a_model msg ->
    Printf.sprintf
      "not a %s artifact (expected a \"%s v%d md5=...\" header): %s" magic
      magic format_version msg
  | Version_unsupported { found; supported } ->
    Printf.sprintf
      "model artifact has format version v%d, but this build only supports \
       v%d — recompile the model with `autotype compile`"
      found supported
  | Checksum_mismatch { expected; actual } ->
    Printf.sprintf
      "model artifact is corrupt (format v%d): header says md5=%s but the \
       payload hashes to %s — the file was truncated or modified"
      format_version expected actual
  | Malformed msg ->
    Printf.sprintf "model artifact payload is malformed (format v%d): %s"
      format_version msg

let encode (t : artifact) : string =
  let payload = Jsonx.to_string (payload_of t) in
  let checksum = Digest.to_hex (Digest.string payload) in
  Printf.sprintf "%s v%d md5=%s\n%s\n" magic format_version checksum payload

let decode (contents : string) : (artifact, load_error) result =
  match String.index_opt contents '\n' with
  | None -> Error (Not_a_model "no header line")
  | Some nl ->
    let header = String.sub contents 0 nl in
    let payload =
      let rest = String.sub contents (nl + 1) (String.length contents - nl - 1) in
      let n = String.length rest in
      if n > 0 && rest.[n - 1] = '\n' then String.sub rest 0 (n - 1) else rest
    in
    (match String.split_on_char ' ' header with
     | [ m; version; md5 ]
       when m = magic
            && String.length version > 1
            && version.[0] = 'v'
            && String.length md5 > 4
            && String.sub md5 0 4 = "md5=" -> begin
         match
           int_of_string_opt (String.sub version 1 (String.length version - 1))
         with
         | None -> Error (Not_a_model ("bad version field " ^ version))
         | Some v when v <> format_version ->
           Error (Version_unsupported { found = v; supported = format_version })
         | Some _ ->
           let expected = String.sub md5 4 (String.length md5 - 4) in
           let actual = Digest.to_hex (Digest.string payload) in
           if not (String.equal expected actual) then
             Error (Checksum_mismatch { expected; actual })
           else begin
             match Jsonx.parse payload with
             | Error msg -> Error (Malformed msg)
             | Ok j ->
               (match of_payload j with
                | t -> Ok t
                | exception Jsonx.Decode_error msg -> Error (Malformed msg))
           end
       end
     | _ -> Error (Not_a_model ("bad header line: " ^ header)))

let save (t : artifact) (path : string) : (unit, string) result =
  Telemetry.with_span "model.save" ~attrs:[ ("path", Telemetry.S path) ]
  @@ fun () ->
  let contents = encode t in
  Telemetry.add_attr "bytes" (Telemetry.I (String.length contents));
  let tmp = path ^ ".tmp" in
  match
    let oc = open_out_bin tmp in
    output_string oc contents;
    close_out oc;
    Sys.rename tmp path
  with
  | () ->
    Telemetry.incr m_saves;
    Ok ()
  | exception Sys_error msg -> Error msg

let load (path : string) : (artifact, load_error) result =
  Telemetry.with_span "model.load" ~attrs:[ ("path", Telemetry.S path) ]
  @@ fun () ->
  let read () =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let contents = really_input_string ic n in
    close_in ic;
    contents
  in
  match read () with
  | exception Sys_error msg ->
    Telemetry.incr m_load_failures;
    Error (File_error msg)
  | contents ->
    (* Fault injection may hand back corrupted bytes here — the torn
       read the checksum/retry machinery exists for. *)
    let contents =
      match Faults.corrupt contents with
      | Some corrupted -> corrupted
      | None -> contents
    in
    (match decode contents with
     | Ok t ->
       Telemetry.incr m_loads;
       Telemetry.add_attr "bytes" (Telemetry.I (String.length contents));
       Ok t
     | Error e ->
       Telemetry.incr m_load_failures;
       Error e)
