(** Persistent model artifacts: the compile half of the compile/serve
    split (DESIGN.md §9).

    An artifact is a self-contained, versioned serialization of one
    synthesized validator [F'(s)] (Section 5.3, Algorithm 3): the
    candidate's MiniScript sources and invocation plan, the interpreter
    sandbox config, the concise DNF and DNF-E with their
    identical-coverage groups, and provenance (query, seed, pipeline
    config, mutation strategy, train-set coverage stats).  Loading an
    artifact rebuilds a {!Autotype_core.Synthesis.t} whose verdicts are
    byte-identical to the in-memory synthesizer — no code search, no
    candidate analysis, no negative generation.

    {2 On-disk format}

    A header line followed by a single JSON payload line:

    {v
    AUTOTYPE-MODEL v<version> md5=<32 hex digits>
    {"provenance":{...},"candidate":{...},"driver":{...},"dnf":{...}}
    v}

    The checksum is MD5 over the exact payload bytes; any truncation or
    bit-flip is rejected at load time before the payload is interpreted.
    Versioning is strict: a loader only accepts its own
    {!format_version} (see DESIGN.md §9 for the compatibility policy). *)

val format_version : int
val magic : string  (** ["AUTOTYPE-MODEL"] *)

val extension : string
(** [".model"] — the registry scans for this suffix. *)

type provenance = {
  query : string;  (** search keyword the model was compiled from *)
  type_id : string option;  (** benchmark type id, when compiled from one *)
  seed : int;  (** pipeline seed (negative generation) *)
  pipeline : Autotype_core.Pipeline.config;
  strategy : Autotype_core.Negative.strategy option;
      (** mutation level that produced the training negatives *)
  candidates_tried : int;
  repos_searched : int;
}

type t = {
  provenance : provenance;
  candidate : Repolib.Candidate.t;
      (** carries a slimmed repository: sources needed for execution,
          with ground-truth annotations stripped *)
  driver : Minilang.Interp.config;  (** sandbox limits used when serving *)
  dnf : Autotype_core.Dnf.result;
      (** concise DNF, DNF-E and train-set coverage stats *)
  summary : Absint.Domain.compiled option;
      (** interpreter-free fast path (format v2, DESIGN.md §13): a
          verdict tree proven by the abstract interpreter to reproduce
          [Synthesis.validate] exactly.  [None] whenever the candidate
          lacks a proven (pure, terminating, summarizable) analysis —
          serving then uses the interpreter for every value. *)
}

(** {1 Compile: exporting} *)

val of_synthesis :
  provenance:provenance -> Autotype_core.Synthesis.t -> t

val of_compiled : Autotype_core.Pipeline.compiled -> t option
(** Artifact of the top-ranked validator of a {!Pipeline.compile} run;
    [None] when the pipeline synthesized nothing. *)

val all_of_compiled : Autotype_core.Pipeline.compiled -> t list
(** One artifact per ranked validator, in rank order. *)

val with_type_id : string -> t -> t

(** {1 Serve: importing} *)

val to_synthesis : t -> Autotype_core.Synthesis.t
(** Rebuild the live validator.  Semantics-preserving: for every input,
    [Synthesis.validate (to_synthesis (load (save t)))] equals
    [Synthesis.validate] of the original. *)

val key : t -> string
(** Registry key: the type id when present, otherwise a slug of the
    query. *)

(** {1 Persistence} *)

type load_error =
  | File_error of string  (** missing or unreadable file *)
  | Not_a_model of string  (** magic line absent or mangled *)
  | Version_unsupported of { found : int; supported : int }
  | Checksum_mismatch of { expected : string; actual : string }
      (** truncated or corrupted payload *)
  | Malformed of string  (** checksum passed but the payload is not a
                             well-formed artifact (writer bug) *)

val load_error_to_string : load_error -> string
(** One-line diagnosis; always names the artifact format version
    involved so version skew is visible in CLI errors. *)

val encode : t -> string
(** The full file contents (header + payload + newline). *)

val decode : string -> (t, load_error) result

val save : t -> string -> (unit, string) result
(** Write atomically (temp file + rename); records a [model.save]
    telemetry span with payload size. *)

val load : string -> (t, load_error) result
(** Read and verify; records a [model.load] span. *)
