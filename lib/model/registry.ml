(** Model registry: directory of artifacts + index + in-memory LRU
    (see registry.mli). *)

type entry = {
  synthesis : Autotype_core.Synthesis.t;
  artifact : Artifact.t;
}

type cached = {
  entry : entry;
  mutable last_used : int;  (** LRU clock tick of the latest [find] *)
}

type t = {
  dir : string;
  capacity : int;
  lock : Mutex.t;
  mutable index : (string * string) list;  (** key -> file name (no dir) *)
  cache : (string, cached) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let default_capacity = 32

let m_hits = Telemetry.counter "serve.cache_hits"
let m_misses = Telemetry.counter "serve.cache_misses"
let m_evictions = Telemetry.counter "serve.cache_evictions"
let m_retry_attempts = Telemetry.counter "retry.attempts"
let m_retry_recovered = Telemetry.counter "retry.recovered"
let m_retry_gave_up = Telemetry.counter "retry.gave_up"

let index_file = "index.json"

let dir t = t.dir

(* ------------------------------------------------------------------ *)
(* Index persistence                                                   *)
(* ------------------------------------------------------------------ *)

let index_path dir = Filename.concat dir index_file

let write_index dir (index : (string * string) list) : (unit, string) result =
  let json =
    Jsonx.Obj
      [ ("version", Jsonx.Int Artifact.format_version);
        ("models",
         Jsonx.Obj
           (List.map (fun (k, f) -> (k, Jsonx.Str f))
              (List.sort compare index))) ]
  in
  let path = index_path dir in
  let tmp = path ^ ".tmp" in
  match
    let oc = open_out_bin tmp in
    output_string oc (Jsonx.to_string json);
    output_char oc '\n';
    close_out oc;
    Sys.rename tmp path
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg

let read_index dir : ((string * string) list option, string) result =
  let path = index_path dir in
  if not (Sys.file_exists path) then Ok None
  else
    match
      let ic = open_in_bin path in
      let contents = really_input_string ic (in_channel_length ic) in
      close_in ic;
      contents
    with
    | exception Sys_error msg -> Error msg
    | contents ->
      (match Jsonx.parse contents with
       | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
       | Ok j ->
         (match
            List.map
              (fun (k, v) -> (k, Jsonx.to_str v))
              (match Jsonx.member "models" j with
               | Jsonx.Obj fields -> fields
               | _ -> raise (Jsonx.Decode_error "models must be an object"))
          with
          | index -> Ok (Some index)
          | exception Jsonx.Decode_error msg ->
            Error (Printf.sprintf "%s: %s" path msg)))

(* ------------------------------------------------------------------ *)
(* Opening                                                             *)
(* ------------------------------------------------------------------ *)

let is_model_file name =
  Filename.check_suffix name Artifact.extension

(* No index: derive one by loading every artifact in the directory.
   A corrupt artifact fails the open with its precise load error —
   better a loud refusal than silently serving a partial registry. *)
let scan_dir dir : ((string * string) list, string) result =
  match Sys.readdir dir with
  | exception Sys_error msg -> Error msg
  | names ->
    let files =
      Array.to_list names |> List.filter is_model_file |> List.sort compare
    in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | name :: rest ->
        (match Artifact.load (Filename.concat dir name) with
         | Ok art -> go ((Artifact.key art, name) :: acc) rest
         | Error e ->
           Error
             (Printf.sprintf "%s: %s" name (Artifact.load_error_to_string e)))
    in
    go [] files

let make ?(capacity = default_capacity) dir index =
  {
    dir;
    capacity = max 1 capacity;
    lock = Mutex.create ();
    index;
    cache = Hashtbl.create 16;
    clock = 0;
    hits = 0;
    misses = 0;
  }

let open_dir ?capacity dir : (t, string) result =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Error (Printf.sprintf "model registry %s: no such directory" dir)
  else
    match read_index dir with
    | Error msg -> Error msg
    | Ok (Some index) -> Ok (make ?capacity dir index)
    | Ok None ->
      (match scan_dir dir with
       | Error msg -> Error (Printf.sprintf "model registry %s: %s" dir msg)
       | Ok index -> Ok (make ?capacity dir index))

let create_dir ?capacity dir : (t, string) result =
  match
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
    else if not (Sys.is_directory dir) then
      failwith (dir ^ " exists and is not a directory")
  with
  | exception Sys_error msg -> Error msg
  | exception Failure msg -> Error msg
  | () ->
    if Sys.file_exists (index_path dir) then open_dir ?capacity dir
    else
      (match write_index dir [] with
       | Error msg -> Error msg
       | Ok () -> Ok (make ?capacity dir []))

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let with_lock t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception e ->
    Mutex.unlock t.lock;
    raise e

let keys t =
  with_lock t (fun () -> List.sort compare (List.map fst t.index))

let mem t key = with_lock t (fun () -> List.mem_assoc key t.index)

let path_of t key =
  with_lock t (fun () ->
      Option.map (Filename.concat t.dir) (List.assoc_opt key t.index))

(* ------------------------------------------------------------------ *)
(* Save                                                                *)
(* ------------------------------------------------------------------ *)

let save t (art : Artifact.t) : (string, string) result =
  let key = Artifact.key art in
  let name = key ^ Artifact.extension in
  let path = Filename.concat t.dir name in
  match Artifact.save art path with
  | Error msg -> Error msg
  | Ok () ->
    with_lock t (fun () ->
        t.index <- (key, name) :: List.remove_assoc key t.index;
        Hashtbl.remove t.cache key;
        match write_index t.dir t.index with
        | Ok () -> Ok path
        | Error msg -> Error msg)

(* ------------------------------------------------------------------ *)
(* Serve: LRU-cached find                                              *)
(* ------------------------------------------------------------------ *)

let evict_lru t =
  if Hashtbl.length t.cache >= t.capacity then begin
    let victim =
      Hashtbl.fold
        (fun key c acc ->
          match acc with
          | Some (_, best) when best.last_used <= c.last_used -> acc
          | _ -> Some (key, c))
        t.cache None
    in
    match victim with
    | Some (key, _) ->
      Hashtbl.remove t.cache key;
      Telemetry.incr m_evictions;
      Telemetry.Flight.record ~kind:"eviction" key
    | None -> ()
  end

(* Transient load failures — an unreadable file or a checksum mismatch
   can both be a torn read racing a writer's rename — are retried a
   bounded number of times with a short backoff.  Structural errors
   (wrong version, not a model, malformed payload) are permanent: the
   bytes on disk are settled and wrong, so retrying only burns the
   caller's budget. *)
let transient_load_error : Artifact.load_error -> bool = function
  | Artifact.File_error _ | Artifact.Checksum_mismatch _ -> true
  | Artifact.Not_a_model _ | Artifact.Version_unsupported _
  | Artifact.Malformed _ -> false

let retry_backoff_s = [| 0.001; 0.005 |]

let load_with_retry path : (Artifact.t, Artifact.load_error) result =
  let max_retries = Array.length retry_backoff_s in
  let rec attempt n =
    match Artifact.load path with
    | Ok art ->
      if n > 0 then Telemetry.incr m_retry_recovered;
      Ok art
    | Error e when transient_load_error e && n < max_retries ->
      Telemetry.incr m_retry_attempts;
      Telemetry.Flight.record ~kind:"retry" ~value:(float_of_int (n + 1))
        path;
      Unix.sleepf retry_backoff_s.(n);
      attempt (n + 1)
    | Error e ->
      if n > 0 then Telemetry.incr m_retry_gave_up;
      Error e
  in
  attempt 0

(* The lock is held across the disk load on a miss: concurrent domains
   asking for the same model wait rather than re-reading and
   re-verifying the same file, so each artifact is loaded at most once
   while resident.  Retry backoff (a handful of ms worst case) sleeps
   under the lock for the same reason — a torn file serves nobody. *)
let find t key : (entry, Artifact.load_error) result =
  with_lock t (fun () ->
      t.clock <- t.clock + 1;
      match Hashtbl.find_opt t.cache key with
      | Some cached ->
        cached.last_used <- t.clock;
        t.hits <- t.hits + 1;
        Telemetry.incr m_hits;
        Ok cached.entry
      | None ->
        t.misses <- t.misses + 1;
        Telemetry.incr m_misses;
        (match List.assoc_opt key t.index with
         | None ->
           Error
             (Artifact.File_error
                (Printf.sprintf "no model for %S in registry %s (available: %s)"
                   key t.dir
                   (match List.map fst t.index with
                    | [] -> "none"
                    | ks -> String.concat ", " (List.sort compare ks))))
         | Some name ->
           (match load_with_retry (Filename.concat t.dir name) with
            | Error e -> Error e
            | Ok artifact ->
              let entry =
                { synthesis = Artifact.to_synthesis artifact; artifact }
              in
              evict_lru t;
              Hashtbl.add t.cache key { entry; last_used = t.clock };
              Ok entry)))

let cache_stats t = with_lock t (fun () -> (t.hits, t.misses))
