.PHONY: all build test lint absint models faults vm-diff serve-smoke check bench bench-compare clean

all: build

build:
	dune build @all

test:
	dune runtest

# Static analysis over every corpus repository; fails on any
# error-severity diagnostic (warnings are gated separately by the
# corpus-hygiene test's allowlist).
lint:
	dune exec bin/autotype_cli.exe -- lint --strict --all-corpus

# Abstract-interpretation smoke (DESIGN.md §13): the reference regex
# detector must be proven pure, step-bounded and summarizable, and the
# proofs must surface through the machine-readable lint output.
ABSINT_OUT ?= _build/absint_smoke.json
absint: build
	dune exec bin/autotype_cli.exe -- lint --repo snippets/ipv4-check --json --verbose > $(ABSINT_OUT)
	@grep -q '"pure":true' $(ABSINT_OUT) || { echo "absint: purity proof missing"; exit 1; }
	@grep -q '"step_bound":"steps <=' $(ABSINT_OUT) || { echo "absint: step bound missing"; exit 1; }
	@grep -q '"tree_nodes":' $(ABSINT_OUT) || { echo "absint: summary missing"; exit 1; }
	@echo "absint: OK"

# Rewrite the committed bench artifacts in canonical form: sorted keys,
# fixed float formatting, one trailing newline.  Timings vary run to
# run; shape and key order never do.  Produces BENCH_pipeline.json
# (stage totals, serve report with streaming quantiles, flight-recorder
# overhead and the SLO report) and BENCH_telemetry.json (the warm-pass
# metrics snapshot readable by `autotype stats --snapshot`), then lints
# the Prometheus exposition rendered from that snapshot.
bench: build
	dune exec bench/main.exe -- pipeline
	dune exec bench/main.exe -- serve
	dune exec bin/autotype_cli.exe -- stats --snapshot BENCH_telemetry.json --prom --lint > /dev/null

# Sequential-vs-parallel pipeline comparison: runs the same synthesis
# workload at jobs=1 and jobs=4 and fails if the ranked outputs diverge
# (the bench exits non-zero on any divergence).
bench-compare:
	dune exec bench/main.exe -- pipeline --jobs 4

# Compile/serve smoke: compile example types into a scratch registry,
# then serve a column through `detect --models` with no re-synthesis.
MODELS_DIR ?= _build/models_smoke
models: build
	rm -rf $(MODELS_DIR)
	dune exec bin/autotype_cli.exe -- compile --type credit-card --type ipv4 --out $(MODELS_DIR)
	@printf '192.168.0.1\n10.0.0.7\n255.255.255.0\n8.8.8.8\n172.16.31.4\n' > $(MODELS_DIR)/column.txt
	dune exec bin/autotype_cli.exe -- detect --column $(MODELS_DIR)/column.txt --models $(MODELS_DIR) --stats | tee $(MODELS_DIR)/detect.out
	@grep -q "detected type ipv4" $(MODELS_DIR)/detect.out || { echo "served detection missed ipv4"; exit 1; }
	@echo "models: OK"

# Fault-injection smoke: serve under injected delays/kills/corruption
# (AUTOTYPE_FAULTS, DESIGN.md §10) and assert graceful degradation —
# batches finish, per-value deadlines report DEADLINE, and a corrupted
# artifact is rejected loudly rather than served.
FAULTS_DIR ?= _build/models_faults
faults: build
	rm -rf $(FAULTS_DIR)
	dune exec bin/autotype_cli.exe -- compile --type ipv4 --out $(FAULTS_DIR)
	@printf '192.168.0.1\n10.0.0.7\n255.255.255.0\n8.8.8.8\n172.16.31.4\n' > $(FAULTS_DIR)/column.txt
	AUTOTYPE_FAULTS="delay_ms=2,p_kill=0.3,seed=7" dune exec bin/autotype_cli.exe -- detect --column $(FAULTS_DIR)/column.txt --models $(FAULTS_DIR) --deadline-ms 500 --value-budget-ms 1 --stats
	AUTOTYPE_FAULTS="delay_ms=5,seed=7" dune exec bin/autotype_cli.exe -- validate --model $(FAULTS_DIR)/ipv4.model --value-budget-ms 1 192.168.0.1 | grep -q DEADLINE
	@AUTOTYPE_FAULTS="p_corrupt=1,seed=7" dune exec bin/autotype_cli.exe -- validate --model $(FAULTS_DIR)/ipv4.model 192.168.0.1 && { echo "corrupted artifact was served"; exit 1; } || true
	@echo "faults: OK"

# Daemon smoke (DESIGN.md §15): compile a model, run `autotype serve`
# over stdio, and push three framed requests plus one malformed frame
# through the wire protocol.  Asserts the bad frame is surfaced (not
# fatal), health and shutdown round-trip, and — the real contract —
# the daemon's verdict words are byte-identical to the one-shot
# `validate` CLI on the same values.
SERVE_DIR ?= _build/serve_smoke
serve-smoke: build
	@rm -rf $(SERVE_DIR)
	dune exec bin/autotype_cli.exe -- compile --type ipv4 --out $(SERVE_DIR)
	@req1='{"id":1,"op":"validate","type":"ipv4","values":["192.168.0.1","notanip"]}'; \
	req2='{"id":2,"op":"health"}'; \
	req3='{"id":3,"op":"shutdown"}'; \
	{ printf '%s\n%s\n' "$${#req1}" "$$req1"; \
	  printf 'XX\n'; \
	  printf '%s\n%s\n' "$${#req2}" "$$req2"; \
	  printf '%s\n%s\n' "$${#req3}" "$$req3"; } > $(SERVE_DIR)/frames.bin
	dune exec bin/autotype_cli.exe -- serve --models $(SERVE_DIR) --stdio \
	  < $(SERVE_DIR)/frames.bin > $(SERVE_DIR)/replies.bin
	@grep -q '"error":"bad_frame"' $(SERVE_DIR)/replies.bin || { echo "serve-smoke: malformed frame not surfaced"; exit 1; }
	@grep -q '"id":2,"ok":true' $(SERVE_DIR)/replies.bin || { echo "serve-smoke: health reply missing"; exit 1; }
	@grep -q '"bye":true' $(SERVE_DIR)/replies.bin || { echo "serve-smoke: shutdown not acknowledged"; exit 1; }
	dune exec bin/autotype_cli.exe -- validate --model $(SERVE_DIR)/ipv4.model \
	  192.168.0.1 notanip > $(SERVE_DIR)/oneshot.out
	@exp=$$(awk 'NF==2 && ($$2=="VALID" || $$2=="invalid" || $$2=="DEADLINE") \
	               {printf("%s\"%s\"", (n++?",":""), $$2)}' $(SERVE_DIR)/oneshot.out); \
	grep -q "\"verdicts\":\[$$exp\]" $(SERVE_DIR)/replies.bin \
	  || { echo "serve-smoke: daemon verdicts drifted from the one-shot CLI"; exit 1; }
	@echo "serve-smoke: OK"

# Engine-parity smoke (DESIGN.md §14): the 4-type synthesis workload
# run under the tree-walker (AUTOTYPE_VM=off) and the bytecode VM must
# produce byte-identical ranked output, exercising the AUTOTYPE_VM
# dispatch end to end.  The pipeline bench checks the same contract
# in-process (plus step accounting); this one covers the env-var path.
VMDIFF_DIR ?= _build/vm_diff
vm-diff: build
	@rm -rf $(VMDIFF_DIR) && mkdir -p $(VMDIFF_DIR)
	@for t in credit-card ipv4 email isbn; do \
	  AUTOTYPE_VM=off dune exec bin/autotype_cli.exe -- synth --type $$t --top 10 > $(VMDIFF_DIR)/$$t.tree || exit 1; \
	  AUTOTYPE_VM=on dune exec bin/autotype_cli.exe -- synth --type $$t --top 10 > $(VMDIFF_DIR)/$$t.vm || exit 1; \
	  cmp $(VMDIFF_DIR)/$$t.tree $(VMDIFF_DIR)/$$t.vm || { echo "vm-diff: $$t ranked output diverged between engines"; exit 1; }; \
	  echo "vm-diff: $$t identical"; \
	done
	@echo "vm-diff: OK"

# Full gate: build, test suites, the compile/serve smoke, the
# fault-injection smoke, the engine-parity smoke, the daemon smoke, and
# the observability paths (CLI --stats and the machine-readable bench
# JSON).  Opt into the parallel-determinism gate with BENCH=1.
check: build test lint absint models faults vm-diff serve-smoke $(if $(BENCH),bench-compare)
	dune exec bin/autotype_cli.exe -- synth --type credit-card --stats
	dune exec bench/main.exe -- pipeline
	@test -s BENCH_pipeline.json || { echo "BENCH_pipeline.json missing or empty"; exit 1; }
	@test -s BENCH_telemetry.json || { echo "BENCH_telemetry.json missing or empty"; exit 1; }
	dune exec bin/autotype_cli.exe -- stats --snapshot BENCH_telemetry.json --prom --lint > /dev/null
	@echo "check: OK"

clean:
	dune clean
	rm -rf _build/models_smoke
