.PHONY: all build test check clean

all: build

build:
	dune build @all

test:
	dune runtest

# Full gate: build, test suites, and smoke-run the observability paths
# (CLI --stats and the machine-readable bench JSON).
check: build test
	dune exec bin/autotype_cli.exe -- synth --type credit-card --stats
	dune exec bench/main.exe -- pipeline
	@test -s BENCH_pipeline.json || { echo "BENCH_pipeline.json missing or empty"; exit 1; }
	@echo "check: OK"

clean:
	dune clean
	rm -f BENCH_pipeline.json
