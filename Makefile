.PHONY: all build test lint check bench-compare clean

all: build

build:
	dune build @all

test:
	dune runtest

# Static analysis over every corpus repository; fails on any
# error-severity diagnostic (warnings are gated separately by the
# corpus-hygiene test's allowlist).
lint:
	dune exec bin/autotype_cli.exe -- lint --strict --all-corpus

# Sequential-vs-parallel pipeline comparison: runs the same synthesis
# workload at jobs=1 and jobs=4 and fails if the ranked outputs diverge
# (the bench exits non-zero on any divergence).
bench-compare:
	dune exec bench/main.exe -- pipeline --jobs 4

# Full gate: build, test suites, and smoke-run the observability paths
# (CLI --stats and the machine-readable bench JSON).  Opt into the
# parallel-determinism gate with BENCH=1.
check: build test lint $(if $(BENCH),bench-compare)
	dune exec bin/autotype_cli.exe -- synth --type credit-card --stats
	dune exec bench/main.exe -- pipeline
	@test -s BENCH_pipeline.json || { echo "BENCH_pipeline.json missing or empty"; exit 1; }
	@echo "check: OK"

clean:
	dune clean
	rm -f BENCH_pipeline.json
