(** Quickstart: synthesize a type-detection function for credit cards.

    This mirrors the workflow of the paper's Figure 6.  A developer
    provides a keyword ("credit card") and a handful of positive
    examples; AutoType searches the code corpus, generates negatives,
    ranks candidate functions by DNF cover, and returns synthesized
    validation functions with human-readable explanations.

    Run with:  dune exec examples/quickstart.exe *)

let positive_examples =
  [
    "4147202263232835"; "371449635398431"; "6011016011016011";
    "5555555555554444"; "4111111111111111"; "378282246310005";
    "5105105105105100"; "6011111111111117"; "4012888888881881";
    "371449635398431"; "5200828282828210"; "4242424242424242";
    "6011000990139424"; "3714 4963 5398 431"; "5425233430109903";
    "4263982640269299"; "4917484589897107"; "5425233430109903";
    "2223000048410010"; "5105105105105100";
  ]

let () =
  print_endline "AutoType quickstart: synthesizing a credit-card detector";
  print_endline "--------------------------------------------------------";
  let index = Corpus.search_index () in
  let outcome =
    Autotype_core.Pipeline.synthesize ~index ~query:"credit card"
      ~positives:positive_examples ()
  in
  Printf.printf "searched %d repositories, tried %d candidate functions\n"
    outcome.Autotype_core.Pipeline.repos_searched
    outcome.Autotype_core.Pipeline.candidates_tried;
  (match outcome.Autotype_core.Pipeline.strategy_used with
   | Some s ->
     Printf.printf "negatives generated with mutation strategy %s\n"
       (Autotype_core.Negative.strategy_to_string s)
   | None -> print_endline "no mutation strategy separated P from N");
  print_newline ();
  print_endline "Top-ranked synthesized functions:";
  List.iteri
    (fun i (r : Autotype_core.Ranking.ranked) ->
      if i < 5 then begin
        let c = r.Autotype_core.Ranking.traced.Autotype_core.Ranking.candidate in
        Printf.printf "%d. %s\n" (i + 1) (Repolib.Candidate.describe c);
        Printf.printf "   covers %d/%d positives, %d/%d negatives\n"
          r.Autotype_core.Ranking.dnf.Autotype_core.Dnf.cov_p
          r.Autotype_core.Ranking.dnf.Autotype_core.Dnf.n_pos
          r.Autotype_core.Ranking.dnf.Autotype_core.Dnf.cov_n
          r.Autotype_core.Ranking.dnf.Autotype_core.Dnf.n_neg;
        Printf.printf "   DNF: %s\n"
          (Autotype_core.Dnf.to_string r.Autotype_core.Ranking.dnf)
      end)
    outcome.Autotype_core.Pipeline.ranked;
  print_newline ();
  match Autotype_core.Pipeline.best outcome with
  | None -> print_endline "no function synthesized"
  | Some syn ->
    print_endline "Validating new inputs with the synthesized function:";
    List.iter
      (fun input ->
        Printf.printf "  %-22s -> %b\n" input
          (Autotype_core.Synthesis.validate syn input))
      [
        "4532015112830366";  (* valid Visa *)
        "4532015112830367";  (* fails Luhn *)
        "5425 2334 3010 9903";  (* valid, with spaces *)
        "1234567890123456";  (* wrong prefix and checksum *)
        "hello world";  (* not a number at all *)
        "042-34-1234";  (* an SSN, not a card *)
      ]
