(** Example: column-type detection over web tables (Section 9 / Figure 1).

    Generates a small synthetic web-table corpus, synthesizes detectors
    for a few types, and annotates the columns — including the
    "cryptic" checksummed columns of Figure 1 that only algorithmic
    validation can identify.

    Run with:  dune exec examples/webtables.exe *)

let target_types = [ "credit-card"; "isbn"; "ipv4"; "datetime"; "phone" ]

let () =
  print_endline "AutoType web-table column annotation";
  print_endline "------------------------------------";
  (* The sales-transactions table of Figure 1, without headers. *)
  let rng = Semtypes.Generators.make_rng 2018 in
  let figure1_columns =
    [
      List.init 6 (fun _ -> Semtypes.Generators.person_name rng);
      List.init 6 (fun _ -> Semtypes.Generators.phone_us rng);
      List.init 6 (fun _ -> Semtypes.Generators.mailing_address rng);
      List.init 6 (fun _ -> Semtypes.Generators.datetime rng);
      List.init 6 (fun _ -> Semtypes.Generators.ipv4 rng);
      List.init 6 (fun _ -> Semtypes.Generators.credit_card rng);
      List.init 6 (fun _ -> Semtypes.Generators.isbn13 rng);
    ]
  in
  print_endline "building detectors (search + synthesis per type)...";
  let detectors =
    List.map
      (fun type_id ->
        let ty = Semtypes.Registry.find_exn type_id in
        (type_id, Tablecorpus.Detect.dnf_detector ty))
      target_types
  in
  List.iteri
    (fun i values ->
      let verdicts =
        List.filter_map
          (fun (type_id, det) ->
            let frac =
              Tablecorpus.Detect.fraction_accepted
                det.Tablecorpus.Detect.accepts values
            in
            if frac > Tablecorpus.Detect.detection_threshold then Some type_id
            else None)
          detectors
      in
      Printf.printf "column %d  (e.g. %-28s) -> %s\n" (i + 1)
        (String.concat "" [ "\""; List.hd values; "\"" ])
        (match verdicts with
         | [] -> "no rich type detected"
         | ts -> String.concat ", " ts))
    figure1_columns;
  print_newline ();
  (* A small corpus run with precision/recall per method. *)
  print_endline "small corpus run (800 columns):";
  let columns =
    Tablecorpus.Webtables.generate
      ~config:{ Tablecorpus.Webtables.default_config with n_columns = 800 }
      ()
  in
  let results = Tablecorpus.Detect.run columns in
  List.iter
    (fun (r : Tablecorpus.Detect.per_type_result) ->
      if r.Tablecorpus.Detect.true_positives > 0 then
        Printf.printf "%-14s %-6s detected=%3d  precision=%.2f  recall=%.2f\n"
          r.Tablecorpus.Detect.type_id
          (Tablecorpus.Detect.method_to_string r.Tablecorpus.Detect.method_)
          r.Tablecorpus.Detect.detected r.Tablecorpus.Detect.precision
          r.Tablecorpus.Detect.relative_recall)
    (List.filter
       (fun (r : Tablecorpus.Detect.per_type_result) ->
         List.mem r.Tablecorpus.Detect.type_id
           [ "datetime"; "address"; "email"; "ipv4"; "isbn" ])
       results)
