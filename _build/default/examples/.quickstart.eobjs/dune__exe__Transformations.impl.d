examples/transformations.ml: Autotype_core Eval List Printf Semtypes String
