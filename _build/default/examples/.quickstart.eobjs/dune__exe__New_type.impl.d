examples/new_type.ml: Autotype_core Corpus List Printf Repolib Semtypes String
