examples/webtables.ml: List Printf Semtypes String Tablecorpus
