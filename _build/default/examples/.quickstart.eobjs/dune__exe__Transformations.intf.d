examples/transformations.mli:
