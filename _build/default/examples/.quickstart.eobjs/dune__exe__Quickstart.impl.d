examples/quickstart.ml: Autotype_core Corpus List Printf Repolib
