examples/new_type.mli:
