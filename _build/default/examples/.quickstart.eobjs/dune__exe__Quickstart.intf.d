examples/quickstart.mli:
