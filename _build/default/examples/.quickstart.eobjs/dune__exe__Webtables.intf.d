examples/webtables.mli:
