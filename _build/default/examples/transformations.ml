(** Example: semantic transformations (Section 7.1, Figure 4, Table 3).

    Once a type is detected, the intermediate variables of the relevant
    functions become candidate transformations — card brand from a
    credit-card number, state from an address, components from a date.

    Run with:  dune exec examples/transformations.exe *)

let show type_id =
  let ty = Semtypes.Registry.find_exn type_id in
  let positives = Semtypes.Registry.positive_examples ~n:5 ~seed:77 ty in
  Printf.printf "\n## %s\n" ty.Semtypes.Registry.name;
  match Eval.Experiments.transformations_for ~positives ty with
  | None -> print_endline "(no function found)"
  | Some (func, positives, transformations) ->
    Printf.printf "from %s\n" func;
    let table = Autotype_core.Transform.to_table positives transformations in
    (match table with
     | header :: rows ->
       let widths =
         List.mapi
           (fun i h ->
             List.fold_left
               (fun acc row ->
                 max acc (String.length (List.nth row i)))
               (String.length h) rows)
           header
       in
       let print_row cells =
         List.iter2
           (fun w c ->
             let c =
               if String.length c > 24 then String.sub c 0 24 ^ "…" else c
             in
             Printf.printf "%-*s  " (min w 25) c)
           widths cells;
         print_newline ()
       in
       print_row header;
       List.iter print_row rows
     | [] -> ())

let () =
  print_endline "AutoType semantic transformations";
  print_endline "---------------------------------";
  List.iter show
    [ "credit-card"; "datetime"; "address"; "url"; "chemical-formula" ]
