(** Example: extending AutoType to a brand-new type.

    The paper's key extensibility claim (Section 1): given only a
    keyword and positive examples, AutoType discovers detection logic
    with no per-type engineering.  Here we pretend "shipping container
    code" is a type the data-preparation system has never seen, provide
    examples scraped from a manifest, and synthesize a detector — which
    ends up reusing the corpus's ISO 6346 check-digit code.

    Run with:  dune exec examples/new_type.exe *)

let () =
  print_endline "AutoType on a previously unseen type: shipping containers";
  print_endline "---------------------------------------------------------";
  let rng = Semtypes.Generators.make_rng 4242 in
  let positives = List.init 20 (fun _ -> Semtypes.Generators.iso6346 rng) in
  Printf.printf "examples: %s ...\n"
    (String.concat ", " (List.filteri (fun i _ -> i < 4) positives));
  let outcome =
    Autotype_core.Pipeline.synthesize ~index:(Corpus.search_index ())
      ~query:"shipping container code" ~positives ()
  in
  (match outcome.Autotype_core.Pipeline.strategy_used with
   | Some s ->
     Printf.printf "separated P from N at mutation level %s\n"
       (Autotype_core.Negative.strategy_to_string s)
   | None -> print_endline "no strategy separated P from N");
  List.iteri
    (fun i (r : Autotype_core.Ranking.ranked) ->
      if i < 3 then
        Printf.printf "%d. %s  (covers %d/%d positives)\n" (i + 1)
          (Repolib.Candidate.describe
             r.Autotype_core.Ranking.traced.Autotype_core.Ranking.candidate)
          r.Autotype_core.Ranking.dnf.Autotype_core.Dnf.cov_p
          r.Autotype_core.Ranking.dnf.Autotype_core.Dnf.n_pos)
    outcome.Autotype_core.Pipeline.ranked;
  match Autotype_core.Pipeline.best outcome with
  | None -> print_endline "nothing synthesized"
  | Some syn ->
    print_endline "\nsynthesized validator on fresh data:";
    let fresh_valid = List.init 3 (fun _ -> Semtypes.Generators.iso6346 rng) in
    let invalid =
      [ "CSQU3054384" (* wrong check digit *); "1234567890A"; "MSCU12345" ]
    in
    List.iter
      (fun v ->
        Printf.printf "  %-14s -> %b\n" v (Autotype_core.Synthesis.validate syn v))
      (fresh_valid @ invalid)
