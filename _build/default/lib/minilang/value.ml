(** Runtime values for MiniScript. *)

type t =
  | Vint of int
  | Vfloat of float
  | Vbool of bool
  | Vstr of string
  | Vnone
  | Vlist of t list ref
  | Vdict of (t * t) list ref  (** insertion-ordered association list *)
  | Vtuple of t list
  | Vobj of obj
  | Vfun of closure
  | Vbound of obj * closure  (** bound method *)
  | Vclass of cls_runtime
  | Vbuiltin of string

and obj = {
  ocls : string;
  fields : (string, t) Hashtbl.t;
}

and closure = {
  cl_func : Ast.func;
  cl_scope : scope;  (** defining scope, used for globals *)
}

and cls_runtime = {
  rt_cname : string;
  rt_methods : (string * closure) list;
}

and scope = {
  vars : (string, t) Hashtbl.t;
  parent : scope option;  (** only module scope has no parent *)
}

exception Runtime_error of string * string
(** [Runtime_error (kind, message)] — kind is a Python-style exception
    name such as "ValueError", "TypeError", "IndexError", "KeyError",
    "ZeroDivisionError" or "Exception" for user raises. *)

let raise_error kind msg = raise (Runtime_error (kind, msg))

let type_name = function
  | Vint _ -> "int"
  | Vfloat _ -> "float"
  | Vbool _ -> "bool"
  | Vstr _ -> "str"
  | Vnone -> "NoneType"
  | Vlist _ -> "list"
  | Vdict _ -> "dict"
  | Vtuple _ -> "tuple"
  | Vobj o -> o.ocls
  | Vfun _ | Vbound _ -> "function"
  | Vclass _ -> "type"
  | Vbuiltin _ -> "builtin"

let truthy = function
  | Vbool b -> b
  | Vint i -> i <> 0
  | Vfloat f -> f <> 0.0
  | Vstr s -> s <> ""
  | Vnone -> false
  | Vlist l -> !l <> []
  | Vdict d -> !d <> []
  | Vtuple t -> t <> []
  | Vobj _ | Vfun _ | Vbound _ | Vclass _ | Vbuiltin _ -> true

(** Structural equality following Python semantics: int/float compare
    numerically, bool compares as int, otherwise same-type structural. *)
let rec equal a b =
  match (a, b) with
  | Vint x, Vint y -> x = y
  | Vfloat x, Vfloat y -> x = y
  | Vint x, Vfloat y | Vfloat y, Vint x -> float_of_int x = y
  | Vbool x, Vbool y -> x = y
  | Vbool x, Vint y | Vint y, Vbool x -> (if x then 1 else 0) = y
  | Vstr x, Vstr y -> String.equal x y
  | Vnone, Vnone -> true
  | Vlist x, Vlist y ->
    List.length !x = List.length !y && List.for_all2 equal !x !y
  | Vtuple x, Vtuple y ->
    List.length x = List.length y && List.for_all2 equal x y
  | Vdict x, Vdict y ->
    List.length !x = List.length !y
    && List.for_all
         (fun (k, v) ->
           match List.find_opt (fun (k', _) -> equal k k') !y with
           | Some (_, v') -> equal v v'
           | None -> false)
         !x
  | Vobj x, Vobj y -> x == y
  | _ -> false

let compare_values a b =
  match (a, b) with
  | Vint x, Vint y -> compare x y
  | Vfloat x, Vfloat y -> compare x y
  | Vint x, Vfloat y -> compare (float_of_int x) y
  | Vfloat x, Vint y -> compare x (float_of_int y)
  | Vstr x, Vstr y -> String.compare x y
  | Vbool x, Vbool y -> compare x y
  | Vlist x, Vlist y -> compare !x !y
  | Vtuple x, Vtuple y -> compare x y
  | _ ->
    raise_error "TypeError"
      (Printf.sprintf "cannot compare %s and %s" (type_name a) (type_name b))

let rec to_display_string v =
  match v with
  | Vint i -> string_of_int i
  | Vfloat f ->
    if Float.is_integer f && Float.abs f < 1e16 then
      Printf.sprintf "%.1f" f
    else Printf.sprintf "%g" f
  | Vbool true -> "True"
  | Vbool false -> "False"
  | Vstr s -> s
  | Vnone -> "None"
  | Vlist l ->
    "[" ^ String.concat ", " (List.map to_repr_string !l) ^ "]"
  | Vtuple t ->
    "(" ^ String.concat ", " (List.map to_repr_string t) ^ ")"
  | Vdict d ->
    "{"
    ^ String.concat ", "
        (List.map
           (fun (k, v) -> to_repr_string k ^ ": " ^ to_repr_string v)
           !d)
    ^ "}"
  | Vobj o -> "<" ^ o.ocls ^ " object>"
  | Vfun c -> "<function " ^ c.cl_func.Ast.fname ^ ">"
  | Vbound (_, c) -> "<bound method " ^ c.cl_func.Ast.fname ^ ">"
  | Vclass c -> "<class " ^ c.rt_cname ^ ">"
  | Vbuiltin n -> "<builtin " ^ n ^ ">"

and to_repr_string v =
  match v with
  | Vstr s -> "'" ^ s ^ "'"
  | _ -> to_display_string v

let scope_create ?parent () = { vars = Hashtbl.create 16; parent }

let rec scope_lookup scope name =
  match Hashtbl.find_opt scope.vars name with
  | Some v -> Some v
  | None ->
    (match scope.parent with
     | Some p -> scope_lookup p name
     | None -> None)

let rec module_scope scope =
  match scope.parent with None -> scope | Some p -> module_scope p
