(** Recursive-descent parser for MiniScript. *)

open Ast

exception Parse_error of string * int  (** message, line *)

type state = {
  toks : Lexer.loc_token array;
  mutable pos : int;
  file : string;
}

let cur st = st.toks.(st.pos)
let cur_tok st = (cur st).tok
let cur_line st = (cur st).tline
let advance st = st.pos <- st.pos + 1

let error st msg = raise (Parse_error (msg, cur_line st))

let expect_op st op =
  match cur_tok st with
  | Lexer.OP o when o = op -> advance st
  | t ->
    error st
      (Printf.sprintf "expected `%s`, found %s" op (Lexer.token_to_string t))

let expect_kw st kw =
  match cur_tok st with
  | Lexer.KEYWORD k when k = kw -> advance st
  | t ->
    error st
      (Printf.sprintf "expected keyword %s, found %s" kw
         (Lexer.token_to_string t))

let expect_newline st =
  match cur_tok st with
  | Lexer.NEWLINE -> advance st
  | Lexer.EOF -> ()
  | t ->
    error st
      (Printf.sprintf "expected end of line, found %s"
         (Lexer.token_to_string t))

let accept_op st op =
  match cur_tok st with
  | Lexer.OP o when o = op -> advance st; true
  | _ -> false

let accept_kw st kw =
  match cur_tok st with
  | Lexer.KEYWORD k when k = kw -> advance st; true
  | _ -> false

let expect_name st =
  match cur_tok st with
  | Lexer.NAME s -> advance st; s
  | t ->
    error st
      (Printf.sprintf "expected identifier, found %s"
         (Lexer.token_to_string t))

let here st = { file = st.file; line = cur_line st }

(* ------------------------------------------------------------------ *)
(* Expressions: precedence climbing.                                   *)
(* or < and < not < comparison/in < +- < * / // % < unary - < ** < call *)
(* ------------------------------------------------------------------ *)

let rec parse_expr st = parse_ternary st

and parse_ternary st =
  let e = parse_or st in
  if accept_kw st "if" then begin
    let p = here st in
    let c = parse_or st in
    expect_kw st "else";
    let alt = parse_expr st in
    Cond (c, e, alt, p)
  end
  else e

and parse_or st =
  let left = parse_and st in
  let rec loop left =
    if accept_kw st "or" then
      let p = here st in
      let right = parse_and st in
      loop (Binop (Or, left, right, p))
    else left
  in
  loop left

and parse_and st =
  let left = parse_not st in
  let rec loop left =
    if accept_kw st "and" then
      let p = here st in
      let right = parse_not st in
      loop (Binop (And, left, right, p))
    else left
  in
  loop left

and parse_not st =
  if accept_kw st "not" then Unop (Not, parse_not st)
  else parse_comparison st

and parse_comparison st =
  let left = parse_bitor st in
  let p = here st in
  let op =
    match cur_tok st with
    | Lexer.OP "==" -> Some Eq
    | Lexer.OP "!=" -> Some Neq
    | Lexer.OP "<" -> Some Lt
    | Lexer.OP "<=" -> Some Le
    | Lexer.OP ">" -> Some Gt
    | Lexer.OP ">=" -> Some Ge
    | Lexer.KEYWORD "in" -> Some In
    | Lexer.KEYWORD "is" ->
      (* "is" / "is not" compare like ==/!= (None and small values). *)
      (match st.toks.(st.pos + 1).tok with
       | Lexer.KEYWORD "not" -> advance st; Some Neq
       | _ -> Some Eq)
    | Lexer.KEYWORD "not" ->
      (* "not in" *)
      (match st.toks.(st.pos + 1).tok with
       | Lexer.KEYWORD "in" -> advance st; Some Not_in
       | _ -> None)
    | _ -> None
  in
  match op with
  | None -> left
  | Some op ->
    advance st;
    let right = parse_bitor st in
    Binop (op, left, right, p)

and parse_bitor st =
  let left = parse_bitxor st in
  let rec loop left =
    let p = here st in
    match cur_tok st with
    | Lexer.OP "|" -> advance st; loop (Binop (Bor, left, parse_bitxor st, p))
    | _ -> left
  in
  loop left

and parse_bitxor st =
  let left = parse_bitand st in
  let rec loop left =
    let p = here st in
    match cur_tok st with
    | Lexer.OP "^" -> advance st; loop (Binop (Bxor, left, parse_bitand st, p))
    | _ -> left
  in
  loop left

and parse_bitand st =
  let left = parse_shift st in
  let rec loop left =
    let p = here st in
    match cur_tok st with
    | Lexer.OP "&" -> advance st; loop (Binop (Band, left, parse_shift st, p))
    | _ -> left
  in
  loop left

and parse_shift st =
  let left = parse_additive st in
  let rec loop left =
    let p = here st in
    match cur_tok st with
    | Lexer.OP "<<" -> advance st; loop (Binop (Shl, left, parse_additive st, p))
    | Lexer.OP ">>" -> advance st; loop (Binop (Shr, left, parse_additive st, p))
    | _ -> left
  in
  loop left

and parse_additive st =
  let left = parse_multiplicative st in
  let rec loop left =
    let p = here st in
    match cur_tok st with
    | Lexer.OP "+" -> advance st; loop (Binop (Add, left, parse_multiplicative st, p))
    | Lexer.OP "-" -> advance st; loop (Binop (Sub, left, parse_multiplicative st, p))
    | _ -> left
  in
  loop left

and parse_multiplicative st =
  let left = parse_unary st in
  let rec loop left =
    let p = here st in
    match cur_tok st with
    | Lexer.OP "*" -> advance st; loop (Binop (Mul, left, parse_unary st, p))
    | Lexer.OP "/" -> advance st; loop (Binop (Div, left, parse_unary st, p))
    | Lexer.OP "//" -> advance st; loop (Binop (Floordiv, left, parse_unary st, p))
    | Lexer.OP "%" -> advance st; loop (Binop (Mod, left, parse_unary st, p))
    | _ -> left
  in
  loop left

and parse_unary st =
  match cur_tok st with
  | Lexer.OP "-" -> advance st; Unop (Neg, parse_unary st)
  | Lexer.OP "+" -> advance st; parse_unary st
  | _ -> parse_power st

and parse_power st =
  let base = parse_postfix st in
  let p = here st in
  if accept_op st "**" then Binop (Pow, base, parse_unary st, p)
  else base

and parse_postfix st =
  let e = parse_atom st in
  let rec loop e =
    let p = here st in
    match cur_tok st with
    | Lexer.OP "(" ->
      advance st;
      let args = parse_args st in
      expect_op st ")";
      loop (Call (e, args, p))
    | Lexer.OP "[" ->
      advance st;
      (* Distinguish index from slice. *)
      if accept_op st ":" then begin
        let hi =
          match cur_tok st with
          | Lexer.OP "]" -> None
          | _ -> Some (parse_expr st)
        in
        expect_op st "]";
        loop (Slice (e, None, hi, p))
      end
      else begin
        let lo = parse_expr st in
        if accept_op st ":" then begin
          let hi =
            match cur_tok st with
            | Lexer.OP "]" -> None
            | _ -> Some (parse_expr st)
          in
          expect_op st "]";
          loop (Slice (e, Some lo, hi, p))
        end
        else begin
          expect_op st "]";
          loop (Index (e, lo, p))
        end
      end
    | Lexer.OP "." ->
      advance st;
      let name = expect_name st in
      (match cur_tok st with
       | Lexer.OP "(" ->
         advance st;
         let args = parse_args st in
         expect_op st ")";
         loop (Method (e, name, args, p))
       | _ -> loop (Attr (e, name)))
    | _ -> e
  in
  loop e

and parse_args st =
  match cur_tok st with
  | Lexer.OP ")" -> []
  | _ ->
    let rec loop acc =
      let a = parse_expr st in
      if accept_op st "," then
        match cur_tok st with
        | Lexer.OP ")" -> List.rev (a :: acc)  (* trailing comma *)
        | _ -> loop (a :: acc)
      else List.rev (a :: acc)
    in
    loop []

and parse_atom st =
  match cur_tok st with
  | Lexer.INT i -> advance st; Int i
  | Lexer.FLOAT f -> advance st; Float f
  | Lexer.STRING s -> advance st; Str s
  | Lexer.NAME n -> advance st; Var n
  | Lexer.KEYWORD "True" -> advance st; Bool true
  | Lexer.KEYWORD "False" -> advance st; Bool false
  | Lexer.KEYWORD "None" -> advance st; None_lit
  | Lexer.OP "(" ->
    advance st;
    (match cur_tok st with
     | Lexer.OP ")" -> advance st; Tuple_lit []
     | _ ->
       let e = parse_expr st in
       if accept_op st "," then begin
         let rec loop acc =
           match cur_tok st with
           | Lexer.OP ")" -> List.rev acc
           | _ ->
             let x = parse_expr st in
             if accept_op st "," then loop (x :: acc) else List.rev (x :: acc)
         in
         let rest = loop [] in
         expect_op st ")";
         Tuple_lit (e :: rest)
       end
       else begin
         expect_op st ")";
         e
       end)
  | Lexer.OP "[" ->
    advance st;
    let rec loop acc =
      match cur_tok st with
      | Lexer.OP "]" -> advance st; List.rev acc
      | _ ->
        let e = parse_expr st in
        if accept_op st "," then loop (e :: acc)
        else begin
          expect_op st "]";
          List.rev (e :: acc)
        end
    in
    List_lit (loop [])
  | Lexer.OP "{" ->
    advance st;
    let rec loop acc =
      match cur_tok st with
      | Lexer.OP "}" -> advance st; List.rev acc
      | _ ->
        let k = parse_expr st in
        expect_op st ":";
        let v = parse_expr st in
        if accept_op st "," then loop ((k, v) :: acc)
        else begin
          expect_op st "}";
          List.rev ((k, v) :: acc)
        end
    in
    Dict_lit (loop [])
  | t ->
    error st
      (Printf.sprintf "unexpected token %s in expression"
         (Lexer.token_to_string t))

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let target_of_expr st (e : expr) : target =
  let rec conv = function
    | Var n -> Tvar n
    | Index (e, i, _) -> Tindex (e, i)
    | Attr (e, n) -> Tattr (e, n)
    | Tuple_lit es -> Ttuple (List.map conv es)
    | _ -> error st "invalid assignment target"
  in
  conv e

let rec parse_block st =
  (* A block is either an inline simple statement list after ':', or an
     indented suite. The caller has already consumed ':'. *)
  match cur_tok st with
  | Lexer.NEWLINE ->
    advance st;
    (match cur_tok st with
     | Lexer.INDENT ->
       advance st;
       let stmts = parse_stmts st in
       (match cur_tok st with
        | Lexer.DEDENT -> advance st
        | Lexer.EOF -> ()
        | t ->
          error st
            (Printf.sprintf "expected dedent, found %s"
               (Lexer.token_to_string t)));
       stmts
     | _ -> error st "expected an indented block")
  | _ ->
    (* Inline statement(s): "if x: return 1" *)
    let s = parse_simple_stmt st in
    expect_newline st;
    [ s ]

and parse_stmts st =
  let rec loop acc =
    match cur_tok st with
    | Lexer.DEDENT | Lexer.EOF -> List.rev acc
    | Lexer.NEWLINE -> advance st; loop acc
    | _ ->
      let s = parse_stmt st in
      loop (s :: acc)
  in
  loop []

and parse_stmt st =
  match cur_tok st with
  | Lexer.KEYWORD "def" -> Func_def (parse_func st)
  | Lexer.KEYWORD "class" -> parse_class st
  | Lexer.KEYWORD "if" -> parse_if st
  | Lexer.KEYWORD "while" ->
    let p = here st in
    advance st;
    let cond = parse_expr st in
    expect_op st ":";
    let body = parse_block st in
    While (cond, p, body)
  | Lexer.KEYWORD "for" ->
    let p = here st in
    advance st;
    let tgt_expr = parse_target_list st in
    let tgt = target_of_expr st tgt_expr in
    expect_kw st "in";
    let iter = parse_expr st in
    expect_op st ":";
    let body = parse_block st in
    For (tgt, iter, body, p)
  | Lexer.KEYWORD "try" -> parse_try st
  | Lexer.KEYWORD ("import" | "from") ->
    (* Imports are recorded as no-ops: the corpus is self-contained and
       repository files share one global scope, like the paper's
       intra-repository inter-procedural tracing. *)
    let rec skip () =
      match cur_tok st with
      | Lexer.NEWLINE | Lexer.EOF -> ()
      | _ -> advance st; skip ()
    in
    skip ();
    expect_newline st;
    Pass
  | _ ->
    let s = parse_simple_stmt st in
    expect_newline st;
    s

and parse_target_list st =
  let e = parse_postfix st in
  if accept_op st "," then begin
    let rec loop acc =
      let x = parse_postfix st in
      if accept_op st "," then loop (x :: acc) else List.rev (x :: acc)
    in
    Tuple_lit (e :: loop [])
  end
  else e

and parse_simple_stmt st =
  let p = here st in
  match cur_tok st with
  | Lexer.KEYWORD "return" ->
    advance st;
    (match cur_tok st with
     | Lexer.NEWLINE | Lexer.EOF -> Return (None, p)
     | _ ->
       let e = parse_expr st in
       let e =
         if accept_op st "," then begin
           let rec loop acc =
             let x = parse_expr st in
             if accept_op st "," then loop (x :: acc)
             else List.rev (x :: acc)
           in
           Tuple_lit (e :: loop [])
         end
         else e
       in
       Return (Some e, p))
  | Lexer.KEYWORD "raise" ->
    advance st;
    (match cur_tok st with
     | Lexer.NEWLINE | Lexer.EOF -> Raise (None, p)
     | _ -> Raise (Some (parse_expr st), p))
  | Lexer.KEYWORD "break" -> advance st; Break p
  | Lexer.KEYWORD "continue" -> advance st; Continue p
  | Lexer.KEYWORD "pass" -> advance st; Pass
  | Lexer.KEYWORD "global" ->
    advance st;
    let rec loop acc =
      let n = expect_name st in
      if accept_op st "," then loop (n :: acc) else List.rev (n :: acc)
    in
    Global (loop [])
  | Lexer.KEYWORD "assert" ->
    advance st;
    let cond = parse_expr st in
    let msg =
      if accept_op st "," then Some (parse_expr st) else None
    in
    (* assert c, m  ==>  if not c: raise m *)
    let raise_stmt =
      Raise ((match msg with Some m -> Some m
                           | None -> Some (Str "AssertionError")), p)
    in
    If ([ (Unop (Not, cond), p, [ raise_stmt ]) ], None)
  | Lexer.KEYWORD "del" ->
    advance st;
    let _ = parse_expr st in
    Pass
  | _ ->
    let e = parse_target_list st in
    (match cur_tok st with
     | Lexer.OP "=" ->
       advance st;
       let rhs = parse_expr st in
       let rhs =
         if accept_op st "," then begin
           let rec loop acc =
             let x = parse_expr st in
             if accept_op st "," then loop (x :: acc)
             else List.rev (x :: acc)
           in
           Tuple_lit (rhs :: loop [])
         end
         else rhs
       in
       Assign (target_of_expr st e, rhs, p)
     | Lexer.OP "+=" -> advance st; Aug_assign (target_of_expr st e, Add, parse_expr st, p)
     | Lexer.OP "-=" -> advance st; Aug_assign (target_of_expr st e, Sub, parse_expr st, p)
     | Lexer.OP "*=" -> advance st; Aug_assign (target_of_expr st e, Mul, parse_expr st, p)
     | Lexer.OP "/=" -> advance st; Aug_assign (target_of_expr st e, Div, parse_expr st, p)
     | Lexer.OP "%=" -> advance st; Aug_assign (target_of_expr st e, Mod, parse_expr st, p)
     | _ -> Expr_stmt (e, p))

and parse_if st =
  let rec arms acc =
    let p = here st in
    (* first call sees "if", later calls see "elif" *)
    advance st;
    let cond = parse_expr st in
    expect_op st ":";
    let body = parse_block st in
    let acc = (cond, p, body) :: acc in
    match cur_tok st with
    | Lexer.KEYWORD "elif" -> arms acc
    | Lexer.KEYWORD "else" ->
      advance st;
      expect_op st ":";
      let els = parse_block st in
      If (List.rev acc, Some els)
    | _ -> If (List.rev acc, None)
  in
  arms []

and parse_try st =
  advance st;
  expect_op st ":";
  let body = parse_block st in
  let rec handlers acc =
    match cur_tok st with
    | Lexer.KEYWORD "except" ->
      advance st;
      let filter, bind =
        match cur_tok st with
        | Lexer.OP ":" -> (None, None)
        | Lexer.NAME _ ->
          (* "except ValueError:", "except ValueError as e:", "except e:" *)
          let first = expect_name st in
          if accept_kw st "as" then (Some first, Some (expect_name st))
          else begin
            match cur_tok st with
            | Lexer.OP ":" -> (Some first, None)
            | _ -> error st "malformed except clause"
          end
        | _ -> error st "malformed except clause"
      in
      expect_op st ":";
      let h = parse_block st in
      handlers ({ h_filter = filter; h_bind = bind; h_body = h } :: acc)
    | _ -> List.rev acc
  in
  let hs = handlers [] in
  let fin =
    if accept_kw st "finally" then begin
      expect_op st ":";
      Some (parse_block st)
    end
    else None
  in
  if hs = [] && fin = None then error st "try without except or finally";
  Try (body, hs, fin)

and parse_func st =
  let p = here st in
  expect_kw st "def";
  let name = expect_name st in
  expect_op st "(";
  let rec params acc defaults =
    match cur_tok st with
    | Lexer.OP ")" -> (List.rev acc, List.rev defaults)
    | _ ->
      let n = expect_name st in
      let defaults =
        if accept_op st "=" then (n, parse_expr st) :: defaults else defaults
      in
      if accept_op st "," then params (n :: acc) defaults
      else (List.rev (n :: acc), List.rev defaults)
  in
  let params, defaults = params [] [] in
  expect_op st ")";
  expect_op st ":";
  let body = parse_block st in
  { fname = name; params; defaults; body; fpos = p }

and parse_class st =
  let p = here st in
  expect_kw st "class";
  let name = expect_name st in
  (* optional empty or object base list *)
  if accept_op st "(" then begin
    (match cur_tok st with
     | Lexer.OP ")" -> ()
     | _ -> ignore (parse_expr st));
    expect_op st ")"
  end;
  expect_op st ":";
  let body = parse_block st in
  let methods, rest =
    List.partition_map
      (function Func_def f -> Left f | s -> Right s)
      body
  in
  Class_def { cname = name; methods; class_body = rest; cpos = p }

let parse ~file (src : string) : program =
  let toks = Array.of_list (Lexer.tokenize ~file src) in
  let st = { toks; pos = 0; file } in
  let body = parse_stmts st in
  (match cur_tok st with
   | Lexer.EOF -> ()
   | t ->
     error st
       (Printf.sprintf "trailing input: %s" (Lexer.token_to_string t)));
  { prog_file = file; prog_body = body }
