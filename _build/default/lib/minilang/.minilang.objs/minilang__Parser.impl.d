lib/minilang/parser.ml: Array Ast Lexer List Printf
