lib/minilang/interp.ml: Ast Buffer Bytes Char Float Hashtbl List Option Printf Regexlite String Trace Value
