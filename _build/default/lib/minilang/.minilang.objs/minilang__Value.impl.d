lib/minilang/value.ml: Ast Float Hashtbl List Printf String
