lib/minilang/trace.ml: Ast List Printf String Value
