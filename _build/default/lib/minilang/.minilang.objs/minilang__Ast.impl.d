lib/minilang/ast.ml: List Printf
