lib/minilang/lexer.ml: Buffer List Printf String
