lib/minilang/interp.mli: Ast Trace Value
