lib/minilang/trace.mli: Ast Value
