lib/repolib/driver.ml: Ast Candidate Hashtbl Interp List Minilang Printf Repo String Value
