lib/repolib/analyzer.mli: Candidate Repo
