lib/repolib/repo.mli: Minilang
