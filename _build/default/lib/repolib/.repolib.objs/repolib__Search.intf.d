lib/repolib/search.mli: Repo
