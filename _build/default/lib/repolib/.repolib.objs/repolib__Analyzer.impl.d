lib/repolib/analyzer.ml: Candidate List Minilang Option Printf Repo
