lib/repolib/search.ml: Buffer Hashtbl List Option Repo String
