lib/repolib/candidate.mli: Repo
