lib/repolib/candidate.ml: Printf Repo
