lib/repolib/repo.ml: Hashtbl List Minilang Printf
