lib/repolib/driver.mli: Candidate Minilang Repo
