(** Candidate functions and their single-input invocation plans
    (Section 4.2 and Appendix D.1 of the paper). *)

type invocation =
  | Direct  (** [F(s)] — variant 1 *)
  | Class_then_method of string * string
      (** [a = C(); a.m(s)] — variant 2 *)
  | Ctor_then_method of string * string
      (** [a = C(s); a.m()] — variant 3 *)
  | Via_argv of string  (** [F()] reading sys.argv — variant 4 *)
  | Via_stdin of string  (** [F()] reading input() — variant 5 *)
  | Via_file of string  (** [F('f.txt')], file holds the input — variant 6 *)
  | Script_var of string * string
      (** run whole file, overriding a hard-coded constant (Listing 3) *)
  | Script_argv of string  (** run whole file with sys.argv fed *)
  | Script_stdin of string  (** run whole file with input() fed *)
  | Split_call of string * char * int
      (** [F(p1, …, pk)] after splitting the input on a delimiter *)

type t = {
  repo : Repo.t;
  file : string;
  func_name : string;
  invocation : invocation;
  doc_text : string;  (** identifier text used by the KW baseline *)
}

val invocation_to_string : invocation -> string

val describe : t -> string
(** e.g. ["mpaz/cardcheck :: is_valid_card [F(s)]"]. *)

val id : t -> string
(** Stable identifier for deduplication and pooling. *)
