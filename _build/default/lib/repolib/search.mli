(** Keyword search over the repository store (Section 4.1): two TF-IDF
    engines with different field weightings stand in for the GitHub
    search API and the Bing API; results are the union of both top-k
    lists. *)

val stem : string -> string
(** Light plural stemming ("messages" → "message"). *)

val tokenize : string -> string list
(** Lowercased, stemmed alphanumeric tokens. *)

type doc = {
  repo : Repo.t;
  title_tokens : string list;  (** name + description *)
  body_tokens : string list;  (** readme + sources *)
}

type index

val build_index : Repo.t list -> index

type engine =
  | Github_api  (** names and descriptions dominate *)
  | Bing_api  (** full-text crawl *)

val score : index -> engine -> string list -> doc -> float
(** TF-IDF score with a weak star prior among matching repos; exactly
    0 for repos matching no query token. *)

val top_k : index -> engine -> k:int -> string -> Repo.t list

val search : index -> ?k:int -> string -> Repo.t list
(** Union of both engines' top-[k] (default 40), best-rank order,
    deduplicated. *)
