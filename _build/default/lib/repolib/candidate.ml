(** Candidate functions and the ways to invoke them with a single input
    string (Section 4.2 and Appendix D.1).

    The six single-parameter variants of Listing 2, plus script-level
    snippets with hard-coded inputs, plus multi-parameter functions fed
    by splitting the input string. *)

type invocation =
  | Direct  (** [F(s)] — variant 1 *)
  | Class_then_method of string * string
      (** [a = C(); a.m(s)] — variant 2: paramless ctor, 1-param method *)
  | Ctor_then_method of string * string
      (** [a = C(s); a.m()] — variant 3: 1-param ctor, paramless method *)
  | Via_argv of string  (** [F()] reading sys.argv — variant 4 *)
  | Via_stdin of string  (** [F()] reading input() — variant 5 *)
  | Via_file of string
      (** [F('f.txt')] where the file holds the input — variant 6 *)
  | Script_var of string * string
      (** run whole file [path], overriding hard-coded constant [var]
          (Appendix D.1, Listing 3) *)
  | Script_argv of string
      (** run whole file [path] with sys.argv fed the input
          (Appendix D.1: "feed input example by replacing system
          argument") *)
  | Script_stdin of string
      (** run whole file [path] with input() fed the input *)
  | Split_call of string * char * int
      (** [F(p1, …, pk)] after splitting the input on a delimiter
          (Appendix D.1, multi-parameter functions) *)

type t = {
  repo : Repo.t;
  file : string;
  func_name : string;
      (** the name reported to users; "<script:path#var>" for snippets *)
  invocation : invocation;
  doc_text : string;
      (** identifier + nearby text used by the KW baseline and for human
          inspection *)
}

let invocation_to_string = function
  | Direct -> "F(s)"
  | Class_then_method (c, m) -> Printf.sprintf "a=%s(); a.%s(s)" c m
  | Ctor_then_method (c, m) -> Printf.sprintf "a=%s(s); a.%s()" c m
  | Via_argv f -> Printf.sprintf "%s()  # sys.argv <- s" f
  | Via_stdin f -> Printf.sprintf "%s()  # input() <- s" f
  | Via_file f -> Printf.sprintf "%s('f.txt')  # file <- s" f
  | Script_var (path, var) -> Printf.sprintf "run %s  # %s <- s" path var
  | Script_argv path -> Printf.sprintf "run %s  # sys.argv <- s" path
  | Script_stdin path -> Printf.sprintf "run %s  # input() <- s" path
  | Split_call (f, sep, k) ->
    Printf.sprintf "%s(*s.split(%C))  # %d args" f sep k

let describe c =
  Printf.sprintf "%s :: %s [%s]" c.repo.Repo.repo_name c.func_name
    (invocation_to_string c.invocation)

(** A stable identifier used for deduplication and reporting. *)
let id c = c.repo.Repo.repo_name ^ "/" ^ c.file ^ "#" ^ c.func_name
