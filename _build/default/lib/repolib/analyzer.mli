(** Static analysis of repositories (Section 4.2): walk every parsed
    file and enumerate the functions invocable with one input string
    under the supported invocation plans, including class-based
    variants, implicit-input functions (argv / stdin / file),
    script-level snippets with hard-coded constants, whole-file scripts
    reading argv or stdin, and multi-parameter functions fed by
    splitting. *)

val candidates_of_repo : Repo.t -> Candidate.t list
(** [] when any file of the repository fails to parse. *)
