(** Seeded positive-example generators for the benchmark types.

    Each generator produces values that the corresponding ground-truth
    validator accepts, playing the role of the "around 20 positive
    examples taken randomly from the web" of Section 8.1. *)

type rng = Random.State.t

let make_rng seed = Random.State.make [| seed |]

let pick rng xs = List.nth xs (Random.State.int rng (List.length xs))

let digits rng n = String.init n (fun _ -> Char.chr (Char.code '0' + Random.State.int rng 10))

let upper_letters rng n =
  String.init n (fun _ -> Char.chr (Char.code 'A' + Random.State.int rng 26))

let lower_letters rng n =
  String.init n (fun _ -> Char.chr (Char.code 'a' + Random.State.int rng 26))

let hex_digits rng n =
  String.init n (fun _ ->
      let v = Random.State.int rng 16 in
      if v < 10 then Char.chr (Char.code '0' + v)
      else Char.chr (Char.code 'a' + v - 10))

let from_alphabet rng alphabet n =
  String.init n (fun _ -> alphabet.[Random.State.int rng (String.length alphabet)])

let int_in rng lo hi = lo + Random.State.int rng (hi - lo + 1)

(* --------------------------- checksummed -------------------------- *)

let credit_card rng =
  let prefix = pick rng [ "4"; "51"; "52"; "53"; "54"; "55"; "34"; "37"; "6011" ] in
  let total_len = if String.length prefix = 2 && prefix.[0] = '3' then 15 else 16 in
  let body = prefix ^ digits rng (total_len - 1 - String.length prefix) in
  body ^ string_of_int (Checksums.luhn_check_digit body)

let credit_card_formatted rng =
  let c = credit_card rng in
  if String.length c = 16 && Random.State.bool rng then
    String.concat " "
      [ String.sub c 0 4; String.sub c 4 4; String.sub c 8 4; String.sub c 12 4 ]
  else c

let isbn13 rng =
  let body = pick rng [ "978"; "979" ] ^ digits rng 9 in
  body ^ string_of_int (Checksums.gs1_check_digit body)

let isbn13_hyphenated rng =
  let raw = isbn13 rng in
  Printf.sprintf "%s-%s-%s-%s-%s" (String.sub raw 0 3) (String.sub raw 3 1)
    (String.sub raw 4 2) (String.sub raw 6 6) (String.sub raw 12 1)

let isbn10 rng =
  let body = digits rng 9 in
  body ^ Checksums.isbn10_check_digit body

let issn rng =
  let body = digits rng 7 in
  let raw = body ^ Checksums.issn_check_digit body in
  String.sub raw 0 4 ^ "-" ^ String.sub raw 4 4

let issn_compact rng =
  let body = digits rng 7 in
  body ^ Checksums.issn_check_digit body

let ean13 rng =
  let body = digits rng 12 in
  body ^ string_of_int (Checksums.gs1_check_digit body)

let ean8 rng =
  let body = digits rng 7 in
  body ^ string_of_int (Checksums.gs1_check_digit body)

let upca rng =
  let body = digits rng 11 in
  body ^ string_of_int (Checksums.gs1_check_digit body)

let gtin14 rng =
  let body = digits rng 13 in
  body ^ string_of_int (Checksums.gs1_check_digit body)

let gln rng = ean13 rng

let isin rng =
  let cc = pick rng [ "US"; "GB"; "DE"; "FR"; "JP"; "CH"; "NL"; "CA" ] in
  let body =
    cc
    ^ String.init 9 (fun _ ->
          if Random.State.bool rng then Char.chr (Char.code '0' + Random.State.int rng 10)
          else Char.chr (Char.code 'A' + Random.State.int rng 26))
  in
  body ^ string_of_int (Checksums.isin_check_digit body)

let vin rng =
  let alphabet = "ABCDEFGHJKLMNPRSTUVWXYZ0123456789" in
  let raw =
    String.init 17 (fun i ->
        if i = 8 then '0' else alphabet.[Random.State.int rng (String.length alphabet)])
  in
  let check = Checksums.vin_check_digit raw in
  String.mapi (fun i c -> if i = 8 then check else c) raw

let iban rng =
  (* Build a valid IBAN by solving the mod-97 congruence for check digits. *)
  let cc, len = pick rng (List.filteri (fun i _ -> i < 8) Checksums.iban_lengths) in
  let bban = digits rng (len - 4) in
  let expand s =
    let buf = Buffer.create 48 in
    String.iter
      (fun c ->
        if c >= '0' && c <= '9' then Buffer.add_char buf c
        else Buffer.add_string buf (string_of_int (Char.code c - Char.code 'A' + 10)))
      s;
    Buffer.contents buf
  in
  let rem = Checksums.mod97_of_string (expand (bban ^ cc ^ "00")) in
  let check = 98 - rem in
  Printf.sprintf "%s%02d%s" cc check bban

let aba_routing rng =
  let first8 = digits rng 8 in
  let w = [| 3; 7; 1; 3; 7; 1; 3; 7 |] in
  let sum = ref 0 in
  String.iteri (fun i c -> sum := !sum + (w.(i) * (Char.code c - Char.code '0'))) first8;
  let last = (10 - (!sum mod 10)) mod 10 in
  first8 ^ string_of_int last

let cusip rng =
  let body =
    String.init 8 (fun _ ->
        if Random.State.int rng 3 = 0 then Char.chr (Char.code 'A' + Random.State.int rng 26)
        else Char.chr (Char.code '0' + Random.State.int rng 10))
  in
  body ^ string_of_int (Checksums.cusip_check_digit body)

let sedol rng =
  let consonants = "BCDFGHJKLMNPQRSTVWXYZ0123456789" in
  let body = String.init 6 (fun _ -> consonants.[Random.State.int rng (String.length consonants)]) in
  body ^ string_of_int (Checksums.sedol_check_digit body)

let imei rng =
  let body = digits rng 14 in
  body ^ string_of_int (Checksums.luhn_check_digit body)

let npi rng =
  let rec try_once () =
    let body = digits rng 9 in
    let check = Checksums.luhn_check_digit ("80840" ^ body) in
    let c = "80840" ^ body ^ string_of_int check in
    if Checksums.luhn_valid c then body ^ string_of_int check else try_once ()
  in
  try_once ()

let nhs rng =
  let rec go () =
    let body = digits rng 9 in
    match Checksums.nhs_check_digit body with
    | Some c -> body ^ string_of_int c
    | None -> go ()
  in
  go ()

let orcid rng =
  let body = digits rng 15 in
  let c = Checksums.orcid_checksum body in
  Printf.sprintf "%s-%s-%s-%s%c" (String.sub body 0 4) (String.sub body 4 4)
    (String.sub body 8 4) (String.sub body 12 3) c

let cn_resident_id rng =
  let region = pick rng [ "110101"; "310104"; "440305"; "330106"; "510107" ] in
  let y = int_in rng 1950 2005 in
  let m = int_in rng 1 12 in
  let d = int_in rng 1 28 in
  let seq = digits rng 3 in
  let body17 = Printf.sprintf "%s%04d%02d%02d%s" region y m d seq in
  body17 ^ String.make 1 (Checksums.cn_id_check_char body17)

let imo rng =
  let rec go () =
    let first6 = digits rng 6 in
    let sum = ref 0 in
    for i = 0 to 5 do
      sum := !sum + ((7 - i) * (Char.code first6.[i] - Char.code '0'))
    done;
    let candidate = "IMO " ^ first6 ^ string_of_int (!sum mod 10) in
    if Validators.imo_number candidate then candidate else go ()
  in
  go ()

let iso6346 rng =
  let owner = upper_letters rng 3 ^ "U" in
  let serial = digits rng 6 in
  let body = owner ^ serial in
  let sum = ref 0 in
  String.iteri
    (fun i c -> sum := !sum + (Validators.iso6346_char_val c * (1 lsl i)))
    body;
  body ^ string_of_int (!sum mod 11 mod 10)

let cas rng =
  let a = string_of_int (int_in rng 50 9_999_999) in
  let b = digits rng 2 in
  let dgs = a ^ b in
  let n = String.length dgs in
  let sum = ref 0 in
  String.iteri (fun i c -> sum := !sum + ((n - i) * (Char.code c - Char.code '0'))) dgs;
  Printf.sprintf "%s-%s-%d" a b (!sum mod 10)

let lei rng =
  (* 18 alnum then check digits making mod-97 = 1. *)
  let lou = pick rng [ "5493"; "2138"; "9695"; "3157" ] in
  let body = lou ^ upper_letters rng 2 ^ digits rng 12 in
  let expand s =
    let buf = Buffer.create 40 in
    String.iter
      (fun c ->
        if c >= '0' && c <= '9' then Buffer.add_char buf c
        else Buffer.add_string buf (string_of_int (Char.code c - Char.code 'A' + 10)))
      s;
    Buffer.contents buf
  in
  let rem = Checksums.mod97_of_string (expand (body ^ "00")) in
  Printf.sprintf "%s%02d" body (98 - rem)

let dea rng =
  let letters = "AB" in
  let l1 = letters.[Random.State.int rng 2] in
  let l2 = Char.chr (Char.code 'A' + Random.State.int rng 26) in
  let d6 = digits rng 6 in
  let d i = Char.code d6.[i] - Char.code '0' in
  let sum = d 0 + d 2 + d 4 + (2 * (d 1 + d 3 + d 5)) in
  Printf.sprintf "%c%c%s%d" l1 l2 d6 (sum mod 10)

let nmea rng =
  let lat = Printf.sprintf "%02d%05.2f" (int_in rng 0 89) (Random.State.float rng 59.99) in
  let lon = Printf.sprintf "%03d%05.2f" (int_in rng 0 179) (Random.State.float rng 59.99) in
  let body =
    Printf.sprintf "GPGGA,123519,%s,N,%s,W,1,08,0.9,545.4,M,46.9,M,," lat lon
  in
  let sum = ref 0 in
  String.iter (fun c -> sum := !sum lxor Char.code c) body;
  Printf.sprintf "$%s*%02X" body !sum

(* --------------------------- format-based ------------------------- *)

let ipv4 rng =
  Printf.sprintf "%d.%d.%d.%d" (int_in rng 1 254) (int_in rng 0 255)
    (int_in rng 0 255) (int_in rng 1 254)

let ipv6 rng =
  String.concat ":" (List.init 8 (fun _ -> hex_digits rng (int_in rng 1 4)))

let mac rng =
  String.concat ":" (List.init 6 (fun _ -> hex_digits rng 2))

let tlds = [ "com"; "org"; "net"; "edu"; "io"; "gov"; "co.uk"; "de" ]

let domain rng =
  lower_letters rng (int_in rng 3 10) ^ "." ^ pick rng tlds

let url rng =
  let scheme = pick rng [ "http://"; "https://" ] in
  let path =
    match Random.State.int rng 3 with
    | 0 -> ""
    | 1 -> "/" ^ lower_letters rng (int_in rng 3 8)
    | _ ->
      "/" ^ lower_letters rng (int_in rng 3 8) ^ "/"
      ^ lower_letters rng (int_in rng 3 8) ^ ".html"
  in
  scheme ^ "www." ^ domain rng ^ path

let email rng =
  let local =
    match Random.State.int rng 3 with
    | 0 -> lower_letters rng (int_in rng 3 9)
    | 1 -> lower_letters rng (int_in rng 3 6) ^ "." ^ lower_letters rng (int_in rng 3 6)
    | _ -> lower_letters rng (int_in rng 3 6) ^ string_of_int (int_in rng 1 99)
  in
  local ^ "@" ^ domain rng

let md5 rng = hex_digits rng 32

let guid rng =
  Printf.sprintf "%s-%s-%s-%s-%s" (hex_digits rng 8) (hex_digits rng 4)
    (hex_digits rng 4) (hex_digits rng 4) (hex_digits rng 12)

let oid rng =
  let n = int_in rng 4 8 in
  string_of_int (int_in rng 0 2)
  ^ "."
  ^ String.concat "." (List.init n (fun _ -> string_of_int (int_in rng 0 999)))

let date_iso rng =
  Printf.sprintf "%04d-%02d-%02d" (int_in rng 1970 2025) (int_in rng 1 12)
    (int_in rng 1 28)

let date_us rng =
  Printf.sprintf "%02d/%02d/%04d" (int_in rng 1 12) (int_in rng 1 28)
    (int_in rng 1970 2025)

let month_abbrevs =
  [ "Jan"; "Feb"; "Mar"; "Apr"; "May"; "Jun"; "Jul"; "Aug"; "Sep"; "Oct";
    "Nov"; "Dec" ]

let date_textual rng =
  Printf.sprintf "%s %02d, %04d" (pick rng month_abbrevs) (int_in rng 1 28)
    (int_in rng 1970 2025)

let datetime rng =
  let d =
    match Random.State.int rng 3 with
    | 0 -> date_iso rng
    | 1 -> date_us rng
    | _ -> date_textual rng
  in
  if Random.State.bool rng then
    Printf.sprintf "%s %02d:%02d:%02d" d (int_in rng 0 23) (int_in rng 0 59)
      (int_in rng 0 59)
  else d

let time_of_day rng =
  Printf.sprintf "%02d:%02d:%02d" (int_in rng 0 23) (int_in rng 0 59) (int_in rng 0 59)

let unix_time rng = string_of_int (int_in rng 1_000_000_000 1_900_000_000)

let longlat rng =
  Printf.sprintf "%.4f, %.4f"
    (Random.State.float rng 180.0 -. 90.0)
    (Random.State.float rng 360.0 -. 180.0)

let us_zipcode rng =
  if Random.State.int rng 4 = 0 then digits rng 5 ^ "-" ^ digits rng 4
  else digits rng 5

let uk_postcode rng =
  Printf.sprintf "%s%d %d%s" (upper_letters rng (int_in rng 1 2))
    (int_in rng 1 99) (int_in rng 0 9) (upper_letters rng 2)

let ca_postcode rng =
  Printf.sprintf "%c%d%c %d%c%d"
    (Char.chr (Char.code 'A' + Random.State.int rng 26))
    (int_in rng 0 9)
    (Char.chr (Char.code 'A' + Random.State.int rng 26))
    (int_in rng 0 9)
    (Char.chr (Char.code 'A' + Random.State.int rng 26))
    (int_in rng 0 9)

let mgrs rng =
  Printf.sprintf "%d%c%s%s" (int_in rng 1 60)
    (String.get "CDEFGHJKLMNPQRSTUVWX" (Random.State.int rng 20))
    (upper_letters rng 2)
    (digits rng (2 * int_in rng 2 5))

let utm rng =
  Printf.sprintf "%d%c %s %s" (int_in rng 1 60)
    (String.get "CDEFGHJKLMNPQRSTUVWX" (Random.State.int rng 20))
    (digits rng 6) (digits rng 7)

let airport rng = pick rng Validators.airport_codes
let us_state rng = pick rng Validators.us_states
let country rng =
  if Random.State.bool rng then pick rng Validators.country_codes
  else pick rng Validators.country_names

let geojson rng =
  let lon = Random.State.float rng 360.0 -. 180.0 in
  let lat = Random.State.float rng 180.0 -. 90.0 in
  match Random.State.int rng 3 with
  | 0 ->
    Printf.sprintf "{\"type\": \"Point\", \"coordinates\": [%.4f, %.4f]}" lon lat
  | 1 ->
    Printf.sprintf
      "{\"type\": \"LineString\", \"coordinates\": [[%.2f, %.2f], [%.2f, %.2f]]}"
      lon lat (lon +. 1.0) (lat +. 1.0)
  | _ ->
    Printf.sprintf
      "{\"type\": \"Feature\", \"geometry\": {\"type\": \"Point\", \"coordinates\": [%.3f, %.3f]}}"
      lon lat

let phone_us rng =
  let area = int_in rng 201 989 in
  let ex = int_in rng 100 999 in
  let num = digits rng 4 in
  match Random.State.int rng 4 with
  | 0 -> Printf.sprintf "(%d) %d-%s" area ex num
  | 1 -> Printf.sprintf "%d-%d-%s" area ex num
  | 2 -> Printf.sprintf "%d%d%s" area ex num
  | _ -> Printf.sprintf "+1 %d %d %s" area ex num

let ssn rng =
  Printf.sprintf "%03d-%02d-%04d" (int_in rng 1 665) (int_in rng 1 99)
    (int_in rng 1 9999)

let ein rng = Printf.sprintf "%02d-%07d" (int_in rng 10 99) (int_in rng 1 9_999_999)

let msisdn rng =
  "+" ^ pick rng [ "1"; "44"; "49"; "33"; "81"; "86" ] ^ digits rng 9

let first_names =
  [ "James"; "Mary"; "Robert"; "Patricia"; "John"; "Jennifer"; "Michael";
    "Linda"; "David"; "Elizabeth"; "William"; "Susan"; "Carlos"; "Maria";
    "Wei"; "Yuki"; "Ahmed"; "Fatima"; "Olga"; "Pierre" ]

let last_names =
  [ "Smith"; "Johnson"; "Williams"; "Brown"; "Jones"; "Garcia"; "Miller";
    "Davis"; "Martinez"; "Lopez"; "Wilson"; "Anderson"; "Chen"; "Tanaka";
    "Mueller"; "Dubois"; "Ivanov"; "Kim"; "Patel"; "O'Brien" ]

let person_name rng = pick rng first_names ^ " " ^ pick rng last_names

let street_names =
  [ "Main"; "Euclid"; "Oak"; "Maple"; "Cedar"; "Washington"; "Lake";
    "Hill"; "Park"; "Pine"; "Elm"; "Wall"; "Madison"; "Jefferson" ]

let cities =
  [ ("Utica", "NY", "13501"); ("Seattle", "WA", "98101");
    ("Austin", "TX", "78701"); ("Salem", "OR", "97301");
    ("Boston", "MA", "02108"); ("Denver", "CO", "80202");
    ("Miami", "FL", "33101"); ("Chicago", "IL", "60601") ]

let mailing_address rng =
  let city, state, zip = pick rng cities in
  Printf.sprintf "%d %s %s, %s %s %s" (int_in rng 1 9999)
    (pick rng street_names)
    (pick rng [ "St"; "Ave"; "Rd"; "Blvd"; "Dr"; "Ln" ])
    city state zip

let hex_color rng = "#" ^ hex_digits rng 6

let rgb_color rng =
  Printf.sprintf "rgb(%d, %d, %d)" (int_in rng 0 255) (int_in rng 0 255)
    (int_in rng 0 255)

let cmyk_color rng =
  Printf.sprintf "cmyk(%d%%, %d%%, %d%%, %d%%)" (int_in rng 0 100)
    (int_in rng 0 100) (int_in rng 0 100) (int_in rng 0 100)

let hsl_color rng =
  Printf.sprintf "hsl(%d, %d%%, %d%%)" (int_in rng 0 360) (int_in rng 0 100)
    (int_in rng 0 100)

let roman rng =
  let n = int_in rng 1 3999 in
  let table =
    [ (1000, "M"); (900, "CM"); (500, "D"); (400, "CD"); (100, "C");
      (90, "XC"); (50, "L"); (40, "XL"); (10, "X"); (9, "IX"); (5, "V");
      (4, "IV"); (1, "I") ]
  in
  let buf = Buffer.create 16 in
  let rec go n = function
    | [] -> ()
    | (v, sym) :: rest as t ->
      if n >= v then begin
        Buffer.add_string buf sym;
        go (n - v) t
      end
      else go n rest
  in
  go n table;
  Buffer.contents buf

let http_status rng =
  pick rng [ "200"; "201"; "204"; "301"; "302"; "304"; "400"; "401"; "403";
             "404"; "405"; "409"; "410"; "418"; "429"; "500"; "502"; "503" ]

let currency rng =
  let amount = Printf.sprintf "%d.%02d" (int_in rng 1 99999) (int_in rng 0 99) in
  match Random.State.int rng 3 with
  | 0 -> "$" ^ amount
  | 1 -> pick rng [ "USD"; "EUR"; "GBP"; "JPY" ] ^ " " ^ amount
  | _ -> amount ^ " " ^ pick rng [ "USD"; "EUR"; "GBP"; "CAD" ]

let stock_ticker rng =
  pick rng
    [ "AAPL"; "MSFT"; "GOOG"; "AMZN"; "TSLA"; "IBM"; "GE"; "F"; "T"; "KO";
      "JPM"; "BAC"; "WMT"; "XOM"; "CVX"; "PFE"; "MRK"; "INTC"; "CSCO";
      "ORCL"; "NKE"; "DIS"; "V"; "MA"; "BRK.A"; "BRK.B" ]

let json_doc rng =
  match Random.State.int rng 3 with
  | 0 ->
    Printf.sprintf "{\"id\": %d, \"name\": \"%s\"}" (int_in rng 1 9999)
      (lower_letters rng 6)
  | 1 ->
    Printf.sprintf "[%d, %d, %d]" (int_in rng 0 99) (int_in rng 0 99)
      (int_in rng 0 99)
  | _ ->
    Printf.sprintf "{\"items\": [{\"k\": \"%s\", \"v\": %d}], \"total\": %d}"
      (lower_letters rng 4) (int_in rng 0 99) (int_in rng 1 9)

let xml_doc rng =
  let tag = lower_letters rng (int_in rng 3 7) in
  Printf.sprintf "<%s><id>%d</id></%s>" tag (int_in rng 1 9999) tag

let html_doc rng =
  (* Real HTML starts with a doctype and is not well-formed XML. *)
  match Random.State.int rng 3 with
  | 0 ->
    Printf.sprintf "<!DOCTYPE html><html><body><p>%s</p></body></html>"
      (lower_letters rng 8)
  | 1 ->
    Printf.sprintf
      "<!DOCTYPE html><html><head><title>%s</title></head><body><div>%s<br></div></body></html>"
      (lower_letters rng 6) (lower_letters rng 10)
  | _ ->
    Printf.sprintf "<!DOCTYPE html><html><body><p>%s</p><p>%s</p></body></html>"
      (lower_letters rng 7) (lower_letters rng 9)

let gene_sequence rng = from_alphabet rng "ACGT" (int_in rng 12 40)

let fasta rng =
  Printf.sprintf ">seq%d %s\n%s\n%s" (int_in rng 1 999) (lower_letters rng 5)
    (from_alphabet rng "ACGT" 40) (from_alphabet rng "ACGT" (int_in rng 10 40))

let fastq rng =
  let n = int_in rng 12 30 in
  Printf.sprintf "@read%d\n%s\n+\n%s" (int_in rng 1 9999)
    (from_alphabet rng "ACGTN" n)
    (from_alphabet rng "!#$%&'()*+,-.IJFGH" n)

let chemical_formula rng =
  pick rng
    [ "H2O"; "CO2"; "C6H12O6"; "NaCl"; "H2SO4"; "CaCO3"; "C2H5OH"; "NH3";
      "CH4"; "C8H10N4O2"; "Fe2O3"; "KMnO4"; "C6H6"; "HNO3"; "MgSO4";
      "C12H22O11"; "AgNO3"; "CuSO4"; "TiO2"; "ZnO" ]

let inchi rng =
  "InChI=1S/" ^ pick rng [ "H2O/h1H2"; "CH4/h1H4"; "C2H6O/c1-2-3/h3H,2H2,1H3";
                           "CO2/c2-1-3"; "C6H6/c1-2-4-6-5-3-1/h1-6H" ]

let smile rng =
  pick rng
    [ "CCO"; "C1CCCCC1"; "c1ccccc1"; "CC(=O)O"; "CC(C)O"; "O=C=O"; "C#N";
      "CCN(CC)CC"; "CC(=O)Nc1ccc(O)cc1"; "CN1C=NC2=C1C(=O)N(C)C(=O)N2C" ]

let uniprot rng =
  Printf.sprintf "%c%d%s%d"
    (String.get "PQO" (Random.State.int rng 3))
    (int_in rng 0 9)
    (upper_letters rng 3)
    (int_in rng 0 9)

let ensembl rng = "ENSG" ^ digits rng 11

let lsid rng =
  Printf.sprintf "urn:lsid:%s.org:%s:%d" (lower_letters rng 6)
    (lower_letters rng 5) (int_in rng 1 99999)

let doi rng =
  Printf.sprintf "10.%04d/%s.%d" (int_in rng 1000 9999) (lower_letters rng 6)
    (int_in rng 1 9999)

let bibcode rng =
  Printf.sprintf "%04dApJ...%03d..%03d%c" (int_in rng 1950 2020)
    (int_in rng 100 999) (int_in rng 100 999)
    (Char.chr (Char.code 'A' + Random.State.int rng 26))

let isrc rng =
  Printf.sprintf "US%s%02d%05d" (upper_letters rng 3) (int_in rng 0 99)
    (int_in rng 0 99999)

let ismn rng =
  let body = "9790" ^ digits rng 8 in
  body ^ string_of_int (Checksums.gs1_check_digit body)

let icd9 rng =
  if Random.State.bool rng then Printf.sprintf "%03d.%d" (int_in rng 1 999) (int_in rng 0 9)
  else Printf.sprintf "%03d" (int_in rng 1 999)

let icd10 rng =
  let letter = Char.chr (Char.code 'A' + Random.State.int rng 26) in
  if Random.State.bool rng then
    Printf.sprintf "%c%02d.%d" letter (int_in rng 0 99) (int_in rng 0 9)
  else Printf.sprintf "%c%02d" letter (int_in rng 0 99)

let hcpcs rng =
  Printf.sprintf "%c%04d" (Char.chr (Char.code 'A' + Random.State.int rng 26))
    (int_in rng 0 9999)

let swift rng =
  upper_letters rng 4 ^ pick rng Validators.country_codes
  ^ (if Random.State.bool rng then "2L" else "33")
  ^ (if Random.State.bool rng then "XXX" else "")

let bitcoin rng =
  let base58 = "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz" in
  String.make 1 (if Random.State.bool rng then '1' else '3')
  ^ from_alphabet rng base58 (int_in rng 25 33)

let asin rng = "B0" ^ from_alphabet rng "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ" 8

let pubchem rng = string_of_int (int_in rng 100 99_999_999)

let uic_wagon rng = digits rng 12  (* uncovered type; generator for registry only *)

let sql_query rng =
  match Random.State.int rng 3 with
  | 0 -> Printf.sprintf "SELECT %s FROM %s WHERE id = %d"
           (lower_letters rng 4) (lower_letters rng 6) (int_in rng 1 999)
  | 1 -> Printf.sprintf "INSERT INTO %s VALUES (%d)" (lower_letters rng 6) (int_in rng 1 99)
  | _ -> Printf.sprintf "UPDATE %s SET %s = %d" (lower_letters rng 6) (lower_letters rng 4) (int_in rng 1 99)

let taf rng =
  Printf.sprintf "TAF K%s %02d%02d%02dZ %02d%02d/%02d%02d %05dKT P6SM"
    (upper_letters rng 3) (int_in rng 1 28) (int_in rng 0 23) (int_in rng 0 59)
    (int_in rng 1 28) (int_in rng 0 23) (int_in rng 1 28) (int_in rng 0 23)
    (int_in rng 10000 35099)

let isni rng =
  let body = digits rng 15 in
  Printf.sprintf "%s %s %s %s%c" (String.sub body 0 4) (String.sub body 4 4)
    (String.sub body 8 4) (String.sub body 12 3) (Checksums.orcid_checksum body)

let ric rng =
  pick rng [ "IBM.N"; "MSFT.O"; "VOD.L"; "AAPL.O"; "BARC.L"; "7203.T";
             "BMWG.DE"; "TOTF.PA"; "NESN.S"; "GAZP.MM" ]

(* --------------------------- noise -------------------------------- *)

(** Strings drawn from "the wild": typical web-table cell values that are
    none of the benchmark types.  Used for the 1000 truly-negative test
    examples of Section 8.1 and for dirty cells in synthetic tables. *)
let wild_cell rng =
  match Random.State.int rng 10 with
  | 0 -> string_of_int (int_in rng 0 99999)
  | 1 -> lower_letters rng (int_in rng 3 10)
  | 2 -> pick rng [ "N/A"; "-"; ""; "unknown"; "TBD"; "none"; "null" ]
  | 3 -> Printf.sprintf "%d-%d" (int_in rng 1 20) (int_in rng 1 30)
  | 4 -> Printf.sprintf "%.2f" (Random.State.float rng 1000.0)
  | 5 ->
    String.concat " " (List.init (int_in rng 2 5) (fun _ -> lower_letters rng (int_in rng 2 8)))
  | 6 -> Printf.sprintf "v%d.%d.%d" (int_in rng 0 9) (int_in rng 0 99) (int_in rng 0 9)
  | 7 -> upper_letters rng (int_in rng 2 6)
  | 8 -> Printf.sprintf "%d%%" (int_in rng 0 100)
  | _ -> lower_letters rng 4 ^ string_of_int (int_in rng 0 999)

(** [samples rng gen n] draws [n] examples, deduplicated best-effort. *)
let samples rng gen n =
  let seen = Hashtbl.create 64 in
  let rec go acc k tries =
    if k = 0 || tries > n * 50 then List.rev acc
    else
      let x = gen rng in
      if Hashtbl.mem seen x then go acc k (tries + 1)
      else begin
        Hashtbl.add seen x ();
        go (x :: acc) (k - 1) (tries + 1)
      end
  in
  go [] n 0
