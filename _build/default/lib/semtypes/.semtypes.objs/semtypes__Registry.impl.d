lib/semtypes/registry.ml: Checksums Generators List Printf Tail Validators
