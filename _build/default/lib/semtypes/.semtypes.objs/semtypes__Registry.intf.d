lib/semtypes/registry.mli: Generators
