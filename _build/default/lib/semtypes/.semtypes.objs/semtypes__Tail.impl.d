lib/semtypes/tail.ml: Checksums Generators List Printf Random Seq String
