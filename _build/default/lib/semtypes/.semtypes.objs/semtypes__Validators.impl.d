lib/semtypes/validators.ml: Array Buffer Char Checksums List Printf Seq String
