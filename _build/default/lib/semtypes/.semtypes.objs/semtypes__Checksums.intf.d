lib/semtypes/checksums.mli:
