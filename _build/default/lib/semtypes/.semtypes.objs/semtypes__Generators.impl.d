lib/semtypes/generators.ml: Array Buffer Char Checksums Hashtbl List Printf Random String Validators
