lib/semtypes/checksums.ml: Array Buffer Char List String
