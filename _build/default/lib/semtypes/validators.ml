(** Ground-truth validators for format-based (non-checksum) semantic
    types.  Used to verify the corpus code, to label synthetic web-table
    columns, and as the "ground-truth algorithms" of Section 9.1's
    evaluation protocol. *)

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_upper c = c >= 'A' && c <= 'Z'
let all p s = s <> "" && String.for_all p s

let split_on = String.split_on_char

let int_opt s = int_of_string_opt s

(* --------------------------- network ------------------------------ *)

let ipv4 s =
  let parts = split_on '.' s in
  List.length parts = 4
  && List.for_all
       (fun p ->
         all is_digit p
         && String.length p <= 3
         && (match int_opt p with
             | Some v -> v >= 0 && v <= 255
             | None -> false)
         (* Reject leading zeros like "01" (common strict behaviour). *)
         && (String.length p = 1 || p.[0] <> '0'))
       parts

let ipv6 s =
  (* Full or ::-compressed groups of 1-4 hex digits. *)
  let s = String.lowercase_ascii s in
  let valid_group g =
    g <> "" && String.length g <= 4 && String.for_all is_hex g
  in
  let has_compress =
    let rec count i acc =
      if i + 1 >= String.length s then acc
      else if s.[i] = ':' && s.[i + 1] = ':' then count (i + 1) (acc + 1)
      else count (i + 1) acc
    in
    count 0 0
  in
  if has_compress > 1 then false
  else if has_compress = 1 then begin
    (* split once on "::" *)
    let idx =
      let rec go i =
        if i + 1 >= String.length s then -1
        else if s.[i] = ':' && s.[i + 1] = ':' then i
        else go (i + 1)
      in
      go 0
    in
    let left = String.sub s 0 idx in
    let right = String.sub s (idx + 2) (String.length s - idx - 2) in
    let groups side =
      if side = "" then []
      else split_on ':' side
    in
    let lg = groups left and rg = groups right in
    List.for_all valid_group lg
    && List.for_all valid_group rg
    && List.length lg + List.length rg <= 7
  end
  else
    let groups = split_on ':' s in
    List.length groups = 8 && List.for_all valid_group groups

let mac_address s =
  let sep_groups sep =
    let parts = split_on sep s in
    List.length parts = 6
    && List.for_all
         (fun p -> String.length p = 2 && String.for_all is_hex p)
         parts
  in
  sep_groups ':' || sep_groups '-'

let url s =
  let has_prefix p =
    String.length s > String.length p
    && String.lowercase_ascii (String.sub s 0 (String.length p)) = p
  in
  (has_prefix "http://" || has_prefix "https://" || has_prefix "ftp://")
  &&
  let rest =
    let i = String.index s '/' + 2 in
    String.sub s i (String.length s - i)
  in
  let host = match String.index_opt rest '/' with
    | Some i -> String.sub rest 0 i
    | None -> (match String.index_opt rest '?' with
               | Some i -> String.sub rest 0 i
               | None -> rest)
  in
  let host = match String.index_opt host ':' with
    | Some i -> String.sub host 0 i
    | None -> host
  in
  host <> ""
  && String.contains host '.'
  && String.for_all (fun c -> is_alpha c || is_digit c || c = '.' || c = '-') host
  && (not (String.length host > 0 && (host.[0] = '.' || host.[String.length host - 1] = '.')))

let email s =
  match String.index_opt s '@' with
  | None -> false
  | Some i ->
    let local = String.sub s 0 i in
    let domain = String.sub s (i + 1) (String.length s - i - 1) in
    local <> ""
    && (not (String.contains domain '@'))
    && String.for_all
         (fun c ->
           is_alpha c || is_digit c || c = '.' || c = '_' || c = '-'
           || c = '+' || c = '%')
         local
    && String.contains domain '.'
    && domain.[0] <> '.'
    && domain.[String.length domain - 1] <> '.'
    && String.for_all (fun c -> is_alpha c || is_digit c || c = '.' || c = '-') domain
    && (let parts = split_on '.' domain in
        List.for_all (fun p -> p <> "") parts
        && (match List.rev parts with
            | tld :: _ -> String.length tld >= 2 && all is_alpha tld
            | [] -> false))

let md5_hash s = String.length s = 32 && all is_hex s

let guid s =
  (* 8-4-4-4-12 hex with dashes. *)
  let parts = split_on '-' s in
  match List.map String.length parts with
  | [ 8; 4; 4; 4; 12 ] ->
    List.for_all (fun p -> String.for_all is_hex p) parts
  | _ -> false

let oid s =
  let parts = split_on '.' s in
  List.length parts >= 2
  && List.for_all (fun p -> all is_digit p) parts
  && (match parts with
      | first :: _ ->
        (match int_opt first with Some v -> v <= 2 | None -> false)
      | [] -> false)

(* --------------------------- date/time ---------------------------- *)

let month_names =
  [ "jan"; "feb"; "mar"; "apr"; "may"; "jun"; "jul"; "aug"; "sep"; "oct";
    "nov"; "dec" ]

let month_full =
  [ "january"; "february"; "march"; "april"; "may"; "june"; "july";
    "august"; "september"; "october"; "november"; "december" ]

let days_in_month y m =
  match m with
  | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
  | 4 | 6 | 9 | 11 -> 30
  | 2 ->
    if (y mod 4 = 0 && y mod 100 <> 0) || y mod 400 = 0 then 29 else 28
  | _ -> 0

let valid_ymd y m d =
  y >= 1000 && y <= 2999 && m >= 1 && m <= 12 && d >= 1 && d <= days_in_month y m

(** ISO "2017-01-31"; also accepts '/' as separator. *)
let date_iso s =
  let try_sep sep =
    match split_on sep s with
    | [ y; m; d ] ->
      String.length y = 4 && all is_digit y && all is_digit m && all is_digit d
      && String.length m <= 2 && String.length d <= 2
      && (match (int_opt y, int_opt m, int_opt d) with
          | Some y, Some m, Some d -> valid_ymd y m d
          | _ -> false)
    | _ -> false
  in
  try_sep '-' || try_sep '/'

(** US "01/31/2017" or "1/31/17". *)
let date_us s =
  match split_on '/' s with
  | [ m; d; y ] ->
    all is_digit m && all is_digit d && all is_digit y
    && (String.length y = 4 || String.length y = 2)
    && (match (int_opt m, int_opt d, int_opt y) with
        | Some m, Some d, Some y ->
          let y = if y < 100 then 2000 + y else y in
          valid_ymd y m d
        | _ -> false)
  | _ -> false

(** Textual "Jan 01, 2017" / "January 1, 2017" / "15 Sep 2011". *)
let date_textual s =
  let lower = String.lowercase_ascii s in
  let tokens =
    String.map (fun c -> if c = ',' then ' ' else c) lower
    |> split_on ' '
    |> List.filter (fun t -> t <> "")
  in
  let month_of tok =
    let rec idx i = function
      | [] -> None
      | m :: rest -> if m = tok then Some (i + 1) else idx (i + 1) rest
    in
    match idx 0 month_full with
    | Some m -> Some m
    | None -> idx 0 month_names
  in
  let check mon d y =
    match (month_of mon, int_opt d, int_opt y) with
    | Some m, Some d, Some y -> valid_ymd y m d
    | _ -> false
  in
  match tokens with
  | [ a; b; y ] -> check a b y || check b a y
  | _ -> false

let datetime s =
  (* Any of the three date formats, optionally followed by HH:MM[:SS]. *)
  let time_ok t =
    match split_on ':' t with
    | [ h; m ] | [ h; m; _ ] ->
      all is_digit h && all is_digit m
      && (match (int_opt h, int_opt m) with
          | Some h, Some m -> h < 24 && m < 60
          | _ -> false)
    | _ -> false
  in
  let date_ok d = date_iso d || date_us d || date_textual d in
  if date_ok s then true
  else
    (* Split a trailing time component off the last space. *)
    match String.rindex_opt s ' ' with
    | Some i ->
      let d = String.sub s 0 i
      and t = String.sub s (i + 1) (String.length s - i - 1) in
      date_ok d && time_ok t
    | None -> false

let time_of_day s =
  match split_on ':' s with
  | [ h; m ] | [ h; m; _ ] ->
    all is_digit h && all is_digit m
    && (match (int_opt h, int_opt m) with
        | Some h, Some m -> h < 24 && m < 60
        | _ -> false)
  | _ -> false

let unix_time s =
  all is_digit s
  && (String.length s = 10 || String.length s = 13)
  && (match int_opt (String.sub s 0 10) with
      | Some v -> v > 100_000_000 && v < 4_102_444_800
      | None -> false)

(* --------------------------- geo ---------------------------------- *)

let float_in lo hi s =
  match float_of_string_opt s with
  | Some v -> v >= lo && v <= hi && (String.contains s '.' || all is_digit (
      if s <> "" && (s.[0] = '-' || s.[0] = '+') then String.sub s 1 (String.length s - 1) else s))
  | None -> false

let longlat s =
  let parts =
    split_on ',' s |> List.map String.trim
  in
  match parts with
  | [ lat; lon ] -> float_in (-90.) 90. lat && float_in (-180.) 180. lon
  | _ -> false

let us_zipcode s =
  (String.length s = 5 && all is_digit s)
  || (String.length s = 10 && s.[5] = '-'
      && all is_digit (String.sub s 0 5)
      && all is_digit (String.sub s 6 4))

let uk_postcode s =
  (* Outward (A9, A99, AA9, AA99, A9A, AA9A) space inward (9AA). *)
  match split_on ' ' s with
  | [ out; inw ] ->
    let ol = String.length out in
    ol >= 2 && ol <= 4
    && is_upper out.[0]
    && String.length inw = 3
    && is_digit inw.[0]
    && is_upper inw.[1] && is_upper inw.[2]
    && String.for_all (fun c -> is_upper c || is_digit c) out
    && String.exists is_digit out
  | _ -> false

let ca_postcode s =
  (* A1A 1A1 *)
  String.length s = 7
  && s.[3] = ' '
  && is_upper s.[0] && is_digit s.[1] && is_upper s.[2]
  && is_digit s.[4] && is_upper s.[5] && is_digit s.[6]

let mgrs s =
  (* e.g. 18SUJ2348306479: zone 1-60, band letter, two letters, even-length digits *)
  let n = String.length s in
  n >= 7
  &&
  let zone_len = if is_digit s.[1] then 2 else 1 in
  (match int_opt (String.sub s 0 zone_len) with
   | Some z -> z >= 1 && z <= 60
   | None -> false)
  && n > zone_len + 3
  && is_upper s.[zone_len] && is_upper s.[zone_len + 1] && is_upper s.[zone_len + 2]
  &&
  let digits = String.sub s (zone_len + 3) (n - zone_len - 3) in
  all is_digit digits && String.length digits mod 2 = 0
  && String.length digits <= 10

let utm s =
  (* "18N 585628 4511322" *)
  match split_on ' ' s |> List.filter (fun t -> t <> "") with
  | [ zone; easting; northing ] ->
    String.length zone >= 2
    && is_upper zone.[String.length zone - 1]
    && (match int_opt (String.sub zone 0 (String.length zone - 1)) with
        | Some z -> z >= 1 && z <= 60
        | None -> false)
    && all is_digit easting && all is_digit northing
    && String.length easting >= 5 && String.length easting <= 7
    && String.length northing >= 6 && String.length northing <= 8
  | _ -> false

let airport_codes =
  [ "SEA"; "SFO"; "LAX"; "JFK"; "ORD"; "ATL"; "DFW"; "DEN"; "PHX"; "IAH";
    "MIA"; "BOS"; "LGA"; "EWR"; "MSP"; "DTW"; "PHL"; "CLT"; "LAS"; "MCO";
    "SLC"; "BWI"; "DCA"; "IAD"; "SAN"; "TPA"; "PDX"; "STL"; "MDW"; "HNL";
    "LHR"; "CDG"; "FRA"; "AMS"; "MAD"; "FCO"; "ZRH"; "VIE"; "CPH"; "ARN";
    "NRT"; "HND"; "ICN"; "PEK"; "PVG"; "HKG"; "SIN"; "BKK"; "SYD"; "MEL";
    "YYZ"; "YVR"; "GRU"; "MEX"; "DXB"; "DOH"; "IST"; "SVO"; "DEL"; "BOM" ]

let airport_code s = List.mem s airport_codes

let us_states =
  [ "AL"; "AK"; "AZ"; "AR"; "CA"; "CO"; "CT"; "DE"; "FL"; "GA"; "HI"; "ID";
    "IL"; "IN"; "IA"; "KS"; "KY"; "LA"; "ME"; "MD"; "MA"; "MI"; "MN"; "MS";
    "MO"; "MT"; "NE"; "NV"; "NH"; "NJ"; "NM"; "NY"; "NC"; "ND"; "OH"; "OK";
    "OR"; "PA"; "RI"; "SC"; "SD"; "TN"; "TX"; "UT"; "VT"; "VA"; "WA"; "WV";
    "WI"; "WY"; "DC" ]

let us_state s = List.mem s us_states

let country_codes =
  [ "US"; "GB"; "DE"; "FR"; "IT"; "ES"; "NL"; "BE"; "CH"; "AT"; "SE"; "NO";
    "DK"; "FI"; "PL"; "IE"; "PT"; "GR"; "CZ"; "HU"; "RO"; "BG"; "HR"; "SK";
    "CA"; "MX"; "BR"; "AR"; "CL"; "CO"; "PE"; "JP"; "CN"; "KR"; "IN"; "AU";
    "NZ"; "SG"; "HK"; "TW"; "TH"; "MY"; "ID"; "PH"; "VN"; "RU"; "TR"; "ZA";
    "EG"; "NG"; "KE"; "IL"; "SA"; "AE"; "QA" ]

let country_names =
  [ "United States"; "United Kingdom"; "Germany"; "France"; "Italy";
    "Spain"; "Netherlands"; "Belgium"; "Switzerland"; "Austria"; "Sweden";
    "Norway"; "Denmark"; "Finland"; "Poland"; "Ireland"; "Portugal";
    "Greece"; "Canada"; "Mexico"; "Brazil"; "Argentina"; "Japan"; "China";
    "South Korea"; "India"; "Australia"; "New Zealand"; "Singapore";
    "Thailand"; "Malaysia"; "Indonesia"; "Philippines"; "Vietnam";
    "Russia"; "Turkey"; "South Africa"; "Egypt"; "Nigeria"; "Kenya";
    "Israel"; "Saudi Arabia" ]

let country s = List.mem s country_codes || List.mem s country_names

let geojson s =
  (* Loose structural check: a JSON object with a "type" member whose value
     is a GeoJSON kind. *)
  let has_sub sub =
    let nl = String.length sub and hl = String.length s in
    let rec go i = i + nl <= hl && (String.sub s i nl = sub || go (i + 1)) in
    nl <= hl && go 0
  in
  String.length s >= 2
  && s.[0] = '{'
  && s.[String.length s - 1] = '}'
  && has_sub "\"type\""
  && List.exists has_sub
       [ "\"Point\""; "\"LineString\""; "\"Polygon\""; "\"MultiPoint\"";
         "\"MultiPolygon\""; "\"Feature\""; "\"FeatureCollection\"" ]

(* --------------------------- personal ----------------------------- *)

let phone_us s =
  (* (502) 107-2133, 502-107-2133, 5021072133, +1 502 107 2133 *)
  let digits =
    String.to_seq s
    |> Seq.filter is_digit
    |> String.of_seq
  in
  let punct_ok =
    String.for_all
      (fun c -> is_digit c || c = ' ' || c = '-' || c = '(' || c = ')' || c = '+' || c = '.')
      s
  in
  punct_ok
  && (String.length digits = 10
      || (String.length digits = 11 && digits.[0] = '1'))
  && (let d = if String.length digits = 11 then String.sub digits 1 10 else digits in
      d.[0] <> '0' && d.[0] <> '1')

let ssn s =
  match split_on '-' s with
  | [ a; b; c ] ->
    String.length a = 3 && String.length b = 2 && String.length c = 4
    && all is_digit a && all is_digit b && all is_digit c
    && a <> "000" && a <> "666"
    && (match int_opt a with Some v -> v < 900 | None -> false)
    && b <> "00" && c <> "0000"
  | _ -> false

let ein s =
  match split_on '-' s with
  | [ a; b ] ->
    String.length a = 2 && String.length b = 7 && all is_digit a && all is_digit b
  | _ -> false

let person_name s =
  let tokens = split_on ' ' s |> List.filter (fun t -> t <> "") in
  List.length tokens >= 2
  && List.length tokens <= 4
  && List.for_all
       (fun t ->
         String.length t >= 1
         && is_upper t.[0]
         && String.for_all (fun c -> is_alpha c || c = '\'' || c = '-' || c = '.') t)
       tokens

let street_suffixes =
  [ "St"; "St."; "Street"; "Ave"; "Ave."; "Avenue"; "Rd"; "Rd."; "Road";
    "Blvd"; "Blvd."; "Boulevard"; "Dr"; "Dr."; "Drive"; "Ln"; "Ln."; "Lane";
    "Way"; "Ct"; "Ct."; "Court"; "Pl"; "Pl."; "Place" ]

let mailing_address s =
  (* "459 Euclid Rd, Utica NY 13501" — number, street with suffix, comma,
     city + state + zip. *)
  match String.index_opt s ',' with
  | None -> false
  | Some i ->
    let street = String.sub s 0 i in
    let rest = String.trim (String.sub s (i + 1) (String.length s - i - 1)) in
    let street_toks = split_on ' ' street |> List.filter (fun t -> t <> "") in
    let rest_toks = split_on ' ' rest |> List.filter (fun t -> t <> "") in
    (match street_toks with
     | num :: (_ :: _ as more) ->
       all is_digit num
       && List.exists (fun t -> List.mem t street_suffixes) more
     | _ -> false)
    &&
    (match List.rev rest_toks with
     | zip :: state :: _ :: _ ->
       us_zipcode zip && us_state state
     | [ zip; state ] -> us_zipcode zip && us_state state
     | _ ->
       (* Also accept "Utica NY" without zip. *)
       (match List.rev rest_toks with
        | state :: _ :: _ -> us_state state
        | _ -> false))

(* --------------------------- colors, misc ------------------------- *)

let hex_color s =
  String.length s >= 1
  && s.[0] = '#'
  && (let body = String.sub s 1 (String.length s - 1) in
      (String.length body = 6 || String.length body = 3)
      && all is_hex body)

let rgb_color s =
  let strip_prefix p s =
    if
      String.length s > String.length p
      && String.lowercase_ascii (String.sub s 0 (String.length p)) = p
    then Some (String.sub s (String.length p) (String.length s - String.length p))
    else None
  in
  match strip_prefix "rgb(" s with
  | Some rest when String.length rest > 0 && rest.[String.length rest - 1] = ')' ->
    let body = String.sub rest 0 (String.length rest - 1) in
    let parts = split_on ',' body |> List.map String.trim in
    List.length parts = 3
    && List.for_all
         (fun p ->
           all is_digit p
           && (match int_opt p with Some v -> v <= 255 | None -> false))
         parts
  | _ -> false

let cmyk_color s =
  (* "cmyk(0%, 20%, 60%, 10%)" or "0,20,60,10" percentages *)
  let body =
    if String.length s > 5
       && String.lowercase_ascii (String.sub s 0 5) = "cmyk("
       && s.[String.length s - 1] = ')'
    then Some (String.sub s 5 (String.length s - 6))
    else None
  in
  match body with
  | Some b ->
    let parts = split_on ',' b |> List.map String.trim in
    List.length parts = 4
    && List.for_all
         (fun p ->
           let p =
             if String.length p > 0 && p.[String.length p - 1] = '%' then
               String.sub p 0 (String.length p - 1)
             else p
           in
           all is_digit p
           && (match int_opt p with Some v -> v <= 100 | None -> false))
         parts
  | None -> false

let hsl_color s =
  if String.length s > 4
     && String.lowercase_ascii (String.sub s 0 4) = "hsl("
     && s.[String.length s - 1] = ')'
  then begin
    let b = String.sub s 4 (String.length s - 5) in
    let parts = split_on ',' b |> List.map String.trim in
    match parts with
    | [ h; sat; l ] ->
      let pct p =
        String.length p > 1
        && p.[String.length p - 1] = '%'
        && all is_digit (String.sub p 0 (String.length p - 1))
        && (match int_opt (String.sub p 0 (String.length p - 1)) with
            | Some v -> v <= 100
            | None -> false)
      in
      all is_digit h
      && (match int_opt h with Some v -> v <= 360 | None -> false)
      && pct sat && pct l
    | _ -> false
  end
  else false

let roman_numeral s =
  s <> ""
  && String.for_all (fun c -> String.contains "IVXLCDM" c) s
  &&
  (* Parse with subtractive rules; value must round-trip. *)
  let value_of c =
    match c with
    | 'I' -> 1 | 'V' -> 5 | 'X' -> 10 | 'L' -> 50
    | 'C' -> 100 | 'D' -> 500 | 'M' -> 1000 | _ -> 0
  in
  let n = String.length s in
  let total = ref 0 in
  for i = 0 to n - 1 do
    let v = value_of s.[i] in
    if i + 1 < n && v < value_of s.[i + 1] then total := !total - v
    else total := !total + v
  done;
  let to_roman n =
    let table =
      [ (1000, "M"); (900, "CM"); (500, "D"); (400, "CD"); (100, "C");
        (90, "XC"); (50, "L"); (40, "XL"); (10, "X"); (9, "IX"); (5, "V");
        (4, "IV"); (1, "I") ]
    in
    let buf = Buffer.create 16 in
    let rec go n table =
      match table with
      | [] -> ()
      | (v, sym) :: rest ->
        if n >= v then begin
          Buffer.add_string buf sym;
          go (n - v) table
        end
        else go n rest
    in
    go n table;
    Buffer.contents buf
  in
  !total >= 1 && !total <= 3999 && to_roman !total = s

let http_status s =
  String.length s = 3
  && all is_digit s
  && (match int_opt s with
      | Some v -> v >= 100 && v <= 599
      | None -> false)

let currency s =
  (* "$1,234.56", "EUR 12.00", "1234.56 USD", "£99" *)
  let codes = [ "USD"; "EUR"; "GBP"; "JPY"; "CHF"; "CAD"; "AUD"; "CNY" ] in
  let symbols = [ "$"; "\xc2\xa3"; "\xe2\x82\xac"; "\xc2\xa5" ] in
  let amount_ok a =
    a <> ""
    && String.for_all (fun c -> is_digit c || c = ',' || c = '.') a
    && String.exists is_digit a
    && (match split_on '.' a with
        | [ _ ] -> true
        | [ _; cents ] -> String.length cents <= 2 && all is_digit cents
        | _ -> false)
    && (let groups = split_on ',' (List.hd (split_on '.' a)) in
        match groups with
        | [ _ ] -> true
        | first :: rest ->
          String.length first >= 1 && String.length first <= 3
          && List.for_all (fun g -> String.length g = 3) rest
        | [] -> false)
  in
  let starts_with p =
    String.length s > String.length p && String.sub s 0 (String.length p) = p
  in
  let ends_with p =
    let pl = String.length p and sl = String.length s in
    sl > pl && String.sub s (sl - pl) pl = p
  in
  List.exists (fun sym -> starts_with sym && amount_ok (String.sub s (String.length sym) (String.length s - String.length sym))) symbols
  || List.exists
       (fun c ->
         (starts_with (c ^ " ") && amount_ok (String.sub s 4 (String.length s - 4)))
         || (ends_with (" " ^ c) && amount_ok (String.sub s 0 (String.length s - 4))))
       codes

let stock_ticker s =
  (* NYSE/NASDAQ style: 1-5 uppercase letters, optionally ".X" suffix. *)
  let base, suffix =
    match String.index_opt s '.' with
    | Some i ->
      (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))
    | None -> (s, None)
  in
  String.length base >= 1
  && String.length base <= 5
  && all is_upper base
  && (match suffix with
      | None -> true
      | Some x -> String.length x = 1 && is_upper x.[0])

let json_doc s =
  (* Balanced braces/brackets with quoted keys; a loose structural check. *)
  let n = String.length s in
  n >= 2
  && (s.[0] = '{' || s.[0] = '[')
  &&
  let depth = ref 0 and ok = ref true and in_str = ref false in
  String.iteri
    (fun i c ->
      if !in_str then begin
        if c = '"' && (i = 0 || s.[i - 1] <> '\\') then in_str := false
      end
      else
        match c with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
          decr depth;
          if !depth < 0 then ok := false
        | _ -> ())
    s;
  !ok && !depth = 0 && (not !in_str)
  && (s.[n - 1] = '}' || s.[n - 1] = ']')

let xml_doc s =
  let n = String.length s in
  n >= 7
  && s.[0] = '<'
  && s.[n - 1] = '>'
  &&
  (* First tag name must re-appear as a closing tag. *)
  let tag_end =
    let rec go i = if i >= n then n else if s.[i] = '>' || s.[i] = ' ' then i else go (i + 1) in
    go 1
  in
  let tag = String.sub s 1 (tag_end - 1) in
  tag <> "" && tag.[0] <> '/'
  && (let closing = "</" ^ tag ^ ">" in
      let cl = String.length closing in
      cl <= n && String.sub s (n - cl) cl = closing)

let html_doc s =
  let lower = String.lowercase_ascii s in
  let has_sub sub =
    let nl = String.length sub and hl = String.length lower in
    let rec go i = i + nl <= hl && (String.sub lower i nl = sub || go (i + 1)) in
    nl <= hl && go 0
  in
  has_sub "<html" || has_sub "<!doctype html" || (has_sub "<body" && has_sub "</body>")
  || (has_sub "<div" && has_sub "</div>") || (has_sub "<p>" && has_sub "</p>")

(* --------------------------- science ------------------------------ *)

let fasta s =
  String.length s > 1
  && s.[0] = '>'
  && String.contains s '\n'
  &&
  let lines = split_on '\n' s in
  (match lines with
   | _header :: (_ :: _ as seqs) ->
     List.for_all
       (fun l ->
         l = ""
         || String.for_all
              (fun c -> String.contains "ACGTUNacgtun-*" c)
              l)
       seqs
     && List.exists (fun l -> l <> "") seqs
   | _ -> false)

let gene_sequence s =
  String.length s >= 8
  && all (fun c -> String.contains "ACGT" c) s

let fastq s =
  let lines = split_on '\n' s in
  match lines with
  | [ h; seq; plus; qual ] ->
    String.length h > 0 && h.[0] = '@'
    && String.length plus > 0 && plus.[0] = '+'
    && all (fun c -> String.contains "ACGTN" c) seq
    && String.length qual = String.length seq
  | _ -> false

let cas_number s =
  (* NNNNNNN-NN-N with its mod-10 weighted checksum. *)
  match split_on '-' s with
  | [ a; b; c ] ->
    String.length a >= 2 && String.length a <= 7
    && String.length b = 2 && String.length c = 1
    && all is_digit a && all is_digit b && all is_digit c
    &&
    let digits = a ^ b in
    let n = String.length digits in
    let sum = ref 0 in
    String.iteri
      (fun i ch -> sum := !sum + ((n - i) * (Char.code ch - Char.code '0')))
      digits;
    !sum mod 10 = Char.code c.[0] - Char.code '0'
  | _ -> false

let chemical_formula s =
  (* Sequence of element symbols (Upper[lower]) each followed by an
     optional count. Validated against a list of real element symbols. *)
  let elements =
    [ "H"; "He"; "Li"; "Be"; "B"; "C"; "N"; "O"; "F"; "Ne"; "Na"; "Mg";
      "Al"; "Si"; "P"; "S"; "Cl"; "Ar"; "K"; "Ca"; "Fe"; "Cu"; "Zn"; "Br";
      "Ag"; "I"; "Au"; "Hg"; "Pb"; "Sn"; "Mn"; "Cr"; "Ni"; "Co"; "Ti" ]
  in
  let n = String.length s in
  let rec go i matched =
    if i >= n then matched
    else if is_digit s.[i] then
      if matched then begin
        let j = ref i in
        while !j < n && is_digit s.[!j] do incr j done;
        go !j matched
      end
      else false
    else if is_upper s.[i] then begin
      let two =
        if i + 1 < n && s.[i + 1] >= 'a' && s.[i + 1] <= 'z' then
          Some (String.sub s i 2)
        else None
      in
      match two with
      | Some sym when List.mem sym elements -> go (i + 2) true
      | _ ->
        if List.mem (String.make 1 s.[i]) elements then go (i + 1) true
        else false
    end
    else false
  in
  n > 0 && go 0 false

let inchi s =
  String.length s > 9
  && String.sub s 0 9 = "InChI=1S/"

let smile s =
  (* Very loose: SMILES alphabet with balanced parentheses and rings. *)
  s <> ""
  && String.for_all
       (fun c ->
         is_alpha c || is_digit c
         || String.contains "()[]=#+-@/\\%." c)
       s
  && String.exists is_alpha s
  &&
  let depth = ref 0 and ok = ref true in
  String.iter
    (fun c ->
      if c = '(' then incr depth
      else if c = ')' then begin
        decr depth;
        if !depth < 0 then ok := false
      end)
    s;
  !ok && !depth = 0

let uniprot s =
  (* e.g. P12345, Q9H0H5, A0A024R161 *)
  let n = String.length s in
  (n = 6 || n = 10)
  && is_upper s.[0]
  && String.for_all (fun c -> is_upper c || is_digit c) s
  && is_digit s.[n - 1]
  && is_digit s.[1]

let ensembl_gene s =
  String.length s = 15
  && String.sub s 0 4 = "ENSG"
  && all is_digit (String.sub s 4 11)

let lsid s =
  let lower = String.lowercase_ascii s in
  String.length lower > 9
  && String.sub lower 0 9 = "urn:lsid:"
  && List.length (split_on ':' lower) >= 5

let drug_name _s = false  (* enumerable; out of scope per Section 2 *)

(* --------------------------- identifiers -------------------------- *)

let imo_number s =
  (* "IMO 9074729": 7 digits; sum of first 6 digits × weights 7..2,
     last digit of the sum equals digit 7. *)
  let num =
    if String.length s > 4 && String.sub s 0 4 = "IMO " then
      String.sub s 4 (String.length s - 4)
    else s
  in
  String.length num = 7
  && all is_digit num
  &&
  let sum = ref 0 in
  for i = 0 to 5 do
    sum := !sum + ((7 - i) * (Char.code num.[i] - Char.code '0'))
  done;
  !sum mod 10 = Char.code num.[6] - Char.code '0'

let bitcoin_address s =
  (* Base58, starts with 1 or 3, length 26-35; no 0OIl characters. *)
  let n = String.length s in
  n >= 26 && n <= 35
  && (s.[0] = '1' || s.[0] = '3')
  && String.for_all
       (fun c ->
         (is_digit c || is_alpha c)
         && not (c = '0' || c = 'O' || c = 'I' || c = 'l'))
       s

(* ISO 6346 letter values skip multiples of 11 (11, 22, 33). *)
let iso6346_letter_values =
  [| 10; 12; 13; 14; 15; 16; 17; 18; 19; 20; 21; 23; 24; 25; 26; 27; 28; 29;
     30; 31; 32; 34; 35; 36; 37; 38 |]

let iso6346_char_val c =
  if is_digit c then Char.code c - Char.code '0'
  else if is_upper c then iso6346_letter_values.(Char.code c - Char.code 'A')
  else -1

let iso6346_container s =
  (* 4 letters (4th is U/J/Z) + 6 digits + check digit. *)
  String.length s = 11
  && all is_upper (String.sub s 0 4)
  && (s.[3] = 'U' || s.[3] = 'J' || s.[3] = 'Z')
  && all is_digit (String.sub s 4 7)
  &&
  let sum = ref 0 in
  for i = 0 to 9 do
    sum := !sum + (iso6346_char_val s.[i] * (1 lsl i))
  done;
  !sum mod 11 mod 10 = Char.code s.[10] - Char.code '0'

let swift_code s =
  (* BIC: 4 letters bank, 2 letters country (validated), 2 alnum location,
     optional 3 alnum branch. *)
  let n = String.length s in
  (n = 8 || n = 11)
  && all is_upper (String.sub s 0 4)
  && List.mem (String.sub s 4 2) country_codes
  && String.for_all (fun c -> is_upper c || is_digit c) (String.sub s 6 (n - 6))

let lei s =
  (* 20 chars: 18 alnum + 2 check digits, ISO 7064 mod 97-10. *)
  String.length s = 20
  && String.for_all (fun c -> is_digit c || is_upper c) s
  && all is_digit (String.sub s 18 2)
  &&
  let buf = Buffer.create 40 in
  String.iter
    (fun c ->
      if is_digit c then Buffer.add_char buf c
      else Buffer.add_string buf (string_of_int (Char.code c - Char.code 'A' + 10)))
    s;
  Checksums.mod97_of_string (Buffer.contents buf) = 1

let doi s =
  String.length s > 8
  && String.sub s 0 3 = "10."
  && String.contains s '/'
  &&
  let slash = String.index s '/' in
  let prefix = String.sub s 3 (slash - 3) in
  all is_digit prefix
  && String.length prefix >= 4
  && slash < String.length s - 1

let isrc s =
  (* CC-XXX-YY-NNNNN possibly without dashes: 12 chars. *)
  let compact = String.concat "" (split_on '-' s) in
  String.length compact = 12
  && List.mem (String.sub compact 0 2) country_codes
  && String.for_all (fun c -> is_upper c || is_digit c) (String.sub compact 2 3)
  && all is_digit (String.sub compact 5 2)
  && all is_digit (String.sub compact 7 5)

let ismn s =
  (* 13-digit ISMN: 9790 prefix + GS1 checksum. *)
  String.length s = 13
  && String.sub s 0 4 = "9790"
  && Checksums.gs1_valid s

let bibcode s =
  (* YYYYJJJJJVVVVMPPPPA: 19 chars, year + journal + volume + page + author *)
  String.length s = 19
  && all is_digit (String.sub s 0 4)
  && (match int_opt (String.sub s 0 4) with
      | Some y -> y >= 1800 && y <= 2100
      | None -> false)
  && is_alpha s.[18]

let icd9 s =
  (* 3 digits, optional .N or .NN; E/V codes allowed. *)
  let body, rest =
    match String.index_opt s '.' with
    | Some i -> (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))
    | None -> (s, None)
  in
  let body_ok =
    (String.length body = 3 && all is_digit body)
    || (String.length body = 4 && body.[0] = 'E' && all is_digit (String.sub body 1 3))
    || (String.length body = 3 && body.[0] = 'V' && all is_digit (String.sub body 1 2))
  in
  body_ok
  && (match rest with
      | None -> true
      | Some r -> String.length r >= 1 && String.length r <= 2 && all is_digit r)

let icd10 s =
  (* Letter + 2 digits, optional . + 1-4 alnum. *)
  let body, rest =
    match String.index_opt s '.' with
    | Some i -> (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))
    | None -> (s, None)
  in
  String.length body = 3
  && is_upper body.[0]
  && is_digit body.[1] && is_digit body.[2]
  && (match rest with
      | None -> true
      | Some r ->
        String.length r >= 1 && String.length r <= 4
        && String.for_all (fun c -> is_digit c || is_upper c) r)

let dea_number s =
  (* 2 letters + 7 digits; checksum: (d1+d3+d5) + 2*(d2+d4+d6) last digit = d7 *)
  String.length s = 9
  && is_upper s.[0] && (is_upper s.[1] || s.[1] = '9')
  && all is_digit (String.sub s 2 7)
  &&
  let d i = Char.code s.[i + 2] - Char.code '0' in
  let sum = d 0 + d 2 + d 4 + (2 * (d 1 + d 3 + d 5)) in
  sum mod 10 = d 6

let hcpcs s =
  String.length s = 5
  && is_upper s.[0]
  && all is_digit (String.sub s 1 4)

let msisdn s =
  (* International number: optional +, 10-15 digits, no leading 0. *)
  let body = if String.length s > 0 && s.[0] = '+' then String.sub s 1 (String.length s - 1) else s in
  String.length body >= 10 && String.length body <= 15
  && all is_digit body
  && body.[0] <> '0'

let asin s =
  String.length s = 10
  && ((String.sub s 0 2 = "B0"
       && String.for_all (fun c -> is_upper c || is_digit c) s)
      || Checksums.isbn10_valid s)

let uic_wagon _s = false  (* modeled as uncovered (niche) *)

let nmea0183 s =
  (* $GPxxx,...*hh with XOR checksum. *)
  String.length s > 7
  && s.[0] = '$'
  &&
  match String.index_opt s '*' with
  | None -> false
  | Some star ->
    String.length s = star + 3
    &&
    let sum = ref 0 in
    for i = 1 to star - 1 do
      sum := !sum lxor Char.code s.[i]
    done;
    let hex = Printf.sprintf "%02X" !sum in
    String.uppercase_ascii (String.sub s (star + 1) 2) = hex

let pubchem_id s =
  (* CID followed by digits, or plain digits with moderate length. *)
  if String.length s > 4 && String.sub s 0 4 = "CID:" then
    all is_digit (String.sub s 4 (String.length s - 4))
  else all is_digit s && String.length s >= 2 && String.length s <= 9

let iupac_number _s = false  (* modeled via chemical_formula family; niche *)

let sql_query s =
  let lower = String.lowercase_ascii s in
  let starts p =
    String.length lower >= String.length p
    && String.sub lower 0 (String.length p) = p
  in
  starts "select " || starts "insert " || starts "update " || starts "delete "

let book_name _s = false  (* enumerable / semantics, uncovered *)
