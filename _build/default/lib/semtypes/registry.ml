(** The 112-type benchmark registry (Appendix A of the paper).

    Each entry records the canonical search keyword, alternative keywords
    (Appendix I / Table 4), the domain grouping, whether the type is one
    of the 20 "popular" types used in the sensitivity and table-detection
    experiments, its coverage status (Section 8.2.2: 84 covered, 24 with
    no usable Python code of which 12 exist in other languages, 4 needing
    complex invocations), and — for covered types — the ground-truth
    validator and positive-example generator. *)

type coverage =
  | Covered
  | No_code  (** niche type: no relevant code found at all *)
  | Other_language  (** validation code exists but not in the mined language *)
  | Complex_invocation  (** code exists but needs chained multi-step calls *)

type t = {
  id : string;
  name : string;  (** canonical search keyword *)
  alt_keywords : string list;
  domain : string;
  popular : bool;
  coverage : coverage;
  validator : (string -> bool) option;
  generator : (Generators.rng -> string) option;
}

let mk ?(alt = []) ?(popular = false) ?(coverage = Covered) ?validator
    ?generator id name domain =
  { id; name; alt_keywords = alt; domain; popular; coverage; validator;
    generator }



let all_types : t list =
  [
    (* ---------------- Science ---------------- *)
    mk "smile" "SMILE notation" "science"
      ~alt:[ "SMILES"; "simplified molecular input line entry" ]
      ~validator:(Validators.smile) ~generator:(Generators.smile);
    mk "inchi" "InChI" "science"
      ~alt:[ "international chemical identifier"; "InChI string" ]
      ~validator:(Validators.inchi) ~generator:(Generators.inchi);
    mk "cas-number" "CAS registry number" "science"
      ~alt:[ "CAS number"; "chemical abstracts service" ]
      ~validator:(Validators.cas_number) ~generator:(Generators.cas);
    mk "fasta" "FASTA sequence" "science"
      ~alt:[ "FASTA gene sequence"; "FASTA" ]
      ~validator:(Validators.fasta) ~generator:(Generators.fasta);
    mk "fastq" "FASTQ sequence" "science" ~alt:[ "FASTQ gene sequence" ]
      ~validator:(Validators.fastq) ~generator:(Generators.fastq);
    mk "chemical-formula" "chemical formula" "science"
      ~alt:[ "molecular formula"; "Hill notation" ]
      ~validator:(Validators.chemical_formula)
      ~generator:(Generators.chemical_formula);
    mk "uniprot" "Uniprot ID" "science" ~alt:[ "uniprot accession" ]
      ~validator:(Validators.uniprot) ~generator:(Generators.uniprot);
    mk "ensembl-gene" "Ensembl gene ID" "science" ~alt:[ "ensembl identifier" ]
      ~validator:(Validators.ensembl_gene) ~generator:(Generators.ensembl);
    mk "lsid" "Life Science Identifier" "science" ~alt:[ "LSID"; "urn lsid" ]
      ~validator:(Validators.lsid) ~generator:(Generators.lsid);
    mk "iupac" "IUPAC number" "science" ~coverage:Other_language;
    mk "evmpd" "EVMPD code" "science" ~coverage:Other_language;
    mk "atc-code" "Anatomical Therapeutic Chemical" "science"
      ~alt:[ "ATC code"; "ATC classification" ] ~validator:(Tail.atc_valid)
      ~generator:(Tail.atc_gen);
    mk "snpid" "SNPID number" "science" ~alt:[ "SNP ID"; "rs number" ]
      ~validator:(Tail.snpid_valid) ~generator:(Tail.snpid_gen);
    mk "iczn" "International Code of Zoological Nomenclature" "science"
      ~coverage:Other_language;
    (* ---------------- Health ---------------- *)
    mk "drug-name" "drug name" "health" ~alt:[ "medication name" ]
      ~validator:(Tail.drug_name_valid) ~generator:(Tail.drug_name_gen);
    mk "dea-number" "DEA number" "health" ~alt:[ "DEA registration" ]
      ~validator:(Validators.dea_number) ~generator:(Generators.dea);
    mk "icd9" "ICD9 code" "health" ~alt:[ "ICD-9"; "diagnosis code icd9" ]
      ~validator:(Validators.icd9) ~generator:(Generators.icd9);
    mk "icd10" "ICD10 code" "health" ~alt:[ "ICD-10" ]
      ~validator:(Validators.icd10) ~generator:(Generators.icd10);
    mk "hl7" "HL7 message" "health" ~coverage:No_code;
    mk "hcpcs" "HCPCS code" "health" ~alt:[ "healthcare procedure code" ]
      ~validator:(Validators.hcpcs) ~generator:(Generators.hcpcs);
    mk "fda-ndc" "FDA drug code" "health" ~alt:[ "national drug code"; "NDC" ]
      ~validator:(Tail.ndc_valid) ~generator:(Tail.ndc_gen);
    mk "aig-number" "Active Ingredient Group number" "health"
      ~coverage:No_code;
    (* ---------------- Financial & commerce ---------------- *)
    mk "sedol" "SEDOL" "financial"
      ~alt:[ "stock exchange daily official list"; "SEDOL number" ]
      ~validator:(Checksums.sedol_valid) ~generator:(Generators.sedol);
    mk "upc" "UPC barcode" "financial" ~popular:true
      ~alt:[ "UPC code"; "universal product code" ]
      ~validator:(Tail.upc_valid) ~generator:(Generators.upca);
    mk "cusip" "CUSIP number" "financial" ~alt:[ "CUSIP securities" ]
      ~validator:(Checksums.cusip_valid) ~generator:(Generators.cusip);
    mk "stock-ticker" "stock ticker" "financial" ~popular:true
      ~alt:[ "stock symbol"; "ticker symbol" ]
      ~validator:(Validators.stock_ticker)
      ~generator:(Generators.stock_ticker);
    mk "aba-routing" "ABA routing number" "financial"
      ~alt:[ "bank routing number"; "routing transit number" ]
      ~validator:(Checksums.aba_valid) ~generator:(Generators.aba_routing);
    mk "ean" "EAN barcode" "financial" ~popular:true
      ~alt:[ "EAN code"; "european article number"; "EAN13" ]
      ~validator:(Tail.ean_valid) ~generator:(Generators.ean13);
    mk "asin" "ASIN book number" "financial" ~alt:[ "amazon ASIN" ]
      ~validator:(Validators.asin) ~generator:(Generators.asin);
    mk "iban" "IBAN number" "financial" ~popular:true
      ~alt:[ "international bank account number"; "IBAN" ]
      ~validator:(Tail.iban_valid) ~generator:(Generators.iban);
    mk "bitcoin-address" "bitcoin address" "financial" ~alt:[ "BTC address" ]
      ~validator:(Validators.bitcoin_address)
      ~generator:(Generators.bitcoin);
    mk "edifact" "EDIFACT message" "financial" ~coverage:No_code;
    mk "fix-message" "FIX message" "financial" ~coverage:No_code;
    mk "gtin" "GTIN number" "financial" ~alt:[ "global trade item number" ]
      ~validator:(Checksums.gtin14_valid) ~generator:(Generators.gtin14);
    mk "credit-card" "credit card" "financial" ~popular:true
      ~alt:[ "credit card number"; "card number" ]
      ~validator:(Tail.credit_card_valid)
      ~generator:(Generators.credit_card_formatted);
    mk "currency" "currency" "financial" ~popular:true
      ~alt:[ "currency amount"; "money amount" ]
      ~validator:(Validators.currency) ~generator:(Generators.currency);
    mk "swift-code" "SWIFT message" "financial"
      ~alt:[ "Society for Worldwide Interbank Financial Telecommunication";
             "SWIFT" ]
      ~validator:(Validators.swift_code) ~generator:(Generators.swift);
    mk "nato-stock" "NATO stock number" "financial" ~coverage:Other_language;
    (* ---------------- Technology & communication ---------------- *)
    mk "ipv4" "IPv4" "technology" ~popular:true
      ~alt:[ "IPv4 address"; "ip address v4" ]
      ~validator:(Validators.ipv4) ~generator:(Generators.ipv4);
    mk "ipv6" "IPv6 address" "technology" ~popular:true ~alt:[ "IPv6" ]
      ~validator:(Validators.ipv6) ~generator:(Generators.ipv6);
    mk "url" "url" "technology" ~popular:true ~alt:[ "website"; "web address" ]
      ~validator:(Validators.url) ~generator:(Generators.url);
    mk "imei" "IMEI number" "technology" ~alt:[ "IMEI code" ]
      ~validator:(Tail.imei_valid) ~generator:(Generators.imei);
    mk "mac-address" "MAC address" "technology" ~alt:[ "hardware address" ]
      ~validator:(Validators.mac_address) ~generator:(Generators.mac);
    mk "md5" "MD5 hash" "technology" ~alt:[ "MD5" ]
      ~validator:(Validators.md5_hash) ~generator:(Generators.md5);
    mk "msisdn" "MSISDN" "technology" ~alt:[ "mobile subscriber number" ]
      ~validator:(Validators.msisdn) ~generator:(Generators.msisdn);
    mk "notam" "Notice To Airmen" "technology" ~coverage:No_code;
    mk "ais-message" "AIS message" "technology" ~coverage:Other_language;
    mk "nmea0183" "NMEA 0183" "technology" ~alt:[ "NMEA sentence" ]
      ~validator:(Validators.nmea0183) ~generator:(Generators.nmea);
    mk "istc" "International Standard Text Code" "technology"
      ~coverage:Other_language;
    (* ---------------- Transportation ---------------- *)
    mk "vin" "VIN" "transportation" ~popular:true
      ~alt:[ "Vehicle Identification Number"; "VIN number" ]
      ~validator:(Tail.vin_valid) ~generator:(Generators.vin);
    mk "iso6346" "shipping container code" "transportation"
      ~alt:[ "ISO 6346"; "container number" ]
      ~validator:(Validators.iso6346_container)
      ~generator:(Generators.iso6346);
    mk "uic-wagon" "UIC wagon number" "transportation" ~coverage:No_code;
    mk "imo-number" "IMO number" "transportation"
      ~alt:[ "International Maritime Organization number"; "maritime ship identifier" ]
      ~validator:(Validators.imo_number) ~generator:(Generators.imo);
    (* ---------------- Geo location ---------------- *)
    mk "longlat" "longitude latitude" "geo" ~alt:[ "long/lat"; "coordinates" ]
      ~validator:(Validators.longlat) ~generator:(Generators.longlat);
    mk "us-zipcode" "US zipcode" "geo" ~popular:true
      ~alt:[ "zipcode"; "US postal code" ]
      ~validator:(Validators.us_zipcode) ~generator:(Generators.us_zipcode);
    mk "uk-postcode" "UK postal code" "geo" ~alt:[ "UK postcode" ]
      ~validator:(Validators.uk_postcode) ~generator:(Generators.uk_postcode);
    mk "ca-postcode" "Canada postal code" "geo" ~alt:[ "canadian postcode" ]
      ~validator:(Validators.ca_postcode) ~generator:(Generators.ca_postcode);
    mk "mgrs" "MGRS coordinate" "geo" ~alt:[ "military grid reference system" ]
      ~validator:(Validators.mgrs) ~generator:(Generators.mgrs);
    mk "gln" "Global Location Number" "geo" ~alt:[ "GLN" ]
      ~validator:(Checksums.gln_valid) ~generator:(Generators.gln);
    mk "utm" "UTM coordinates" "geo" ~alt:[ "universal transverse mercator" ]
      ~validator:(Validators.utm) ~generator:(Generators.utm);
    mk "airport-code" "airport code" "geo" ~popular:true
      ~alt:[ "IATA code"; "airport IATA" ]
      ~validator:(Validators.airport_code) ~generator:(Generators.airport);
    mk "us-state" "us state abbreviation" "geo" ~alt:[ "state code" ]
      ~validator:(Validators.us_state) ~generator:(Generators.us_state);
    mk "country-code" "country code" "geo" ~popular:true
      ~alt:[ "country"; "ISO country code" ]
      ~validator:(Validators.country) ~generator:(Generators.country);
    mk "geojson" "geojson" "geo" ~alt:[ "geo json geometry" ]
      ~validator:(Validators.geojson) ~generator:(Generators.geojson);
    mk "taf" "TAF message" "geo" ~coverage:Complex_invocation
      ~validator:(Tail.taf_valid) ~generator:(Generators.taf);
    mk "igsn" "International Geo Sample Number" "geo"
      ~coverage:Other_language;
    (* ---------------- Publication ---------------- *)
    mk "isbn" "ISBN" "publication" ~popular:true
      ~alt:[ "international standard book number"; "ISBN13" ]
      ~validator:(Tail.isbn_valid) ~generator:(Generators.isbn13);
    mk "isin" "ISIN" "publication" ~popular:true
      ~alt:[ "ISIN number"; "international securities identification number" ]
      ~validator:(Checksums.isin_valid) ~generator:(Generators.isin);
    mk "issn" "ISSN" "publication" ~popular:true
      ~alt:[ "international standard serial number" ]
      ~validator:(Tail.issn_valid) ~generator:(Generators.issn);
    mk "bibcode" "Bibcode" "publication" ~alt:[ "astronomy bibcode" ]
      ~validator:(Validators.bibcode) ~generator:(Generators.bibcode);
    mk "isan" "ISAN" "publication" ~coverage:Other_language;
    mk "iswc" "ISWC" "publication" ~coverage:Other_language;
    mk "doi" "DOI identifier" "publication"
      ~alt:[ "digital object identifier"; "DOI number" ]
      ~validator:(Validators.doi) ~generator:(Generators.doi);
    mk "isrc" "ISRC" "publication"
      ~alt:[ "international standard recording code" ]
      ~validator:(Validators.isrc) ~generator:(Generators.isrc);
    mk "ismn" "ISMN" "publication"
      ~alt:[ "international standard music number" ]
      ~validator:(Validators.ismn) ~generator:(Generators.ismn);
    mk "orcid" "ORCID" "publication" ~alt:[ "ORCID identifier" ]
      ~validator:(Tail.orcid_valid) ~generator:(Generators.orcid);
    mk "onix" "ONIX publishing protocol" "publication" ~coverage:No_code;
    mk "lcc" "Library of Congress Classification" "publication"
      ~coverage:No_code;
    mk "iso690" "ISO 690 citation" "publication" ~coverage:No_code;
    mk "apa-citation" "APA citation" "publication" ~coverage:No_code;
    mk "nbn" "National Bibliography Number" "publication"
      ~coverage:Other_language;
    mk "ettn" "Electronic Textbook Track Number" "publication"
      ~coverage:Other_language;
    (* ---------------- Personal information ---------------- *)
    mk "phone" "phone number" "personal" ~popular:true
      ~alt:[ "telephone number"; "phone" ]
      ~validator:(Validators.phone_us) ~generator:(Generators.phone_us);
    mk "email" "email address" "personal" ~popular:true ~alt:[ "email"; "e-mail" ]
      ~validator:(Validators.email) ~generator:(Generators.email);
    mk "person-name" "person name" "personal" ~alt:[ "full name" ]
      ~validator:(Validators.person_name)
      ~generator:(Generators.person_name);
    mk "address" "mailing address" "personal" ~popular:true
      ~alt:[ "street address"; "address" ]
      ~validator:(Validators.mailing_address)
      ~generator:(Generators.mailing_address);
    mk "lei" "Legal Entity Identifier" "personal" ~alt:[ "LEI code" ]
      ~validator:(Validators.lei) ~generator:(Generators.lei);
    mk "ssn" "US Social Security Number" "personal" ~alt:[ "SSN" ]
      ~validator:(Validators.ssn) ~generator:(Generators.ssn);
    mk "cn-resident-id" "Chinese Resident ID" "personal"
      ~alt:[ "china ID card number" ]
      ~validator:(Checksums.cn_id_valid)
      ~generator:(Generators.cn_resident_id);
    mk "ein" "Employer Identification Number" "personal" ~alt:[ "EIN" ]
      ~validator:(Validators.ein) ~generator:(Generators.ein);
    mk "nhs-number" "NHS number" "personal"
      ~validator:(Checksums.nhs_valid) ~generator:(Generators.nhs);
    mk "pubchem" "PubChem ID" "personal" ~alt:[ "pubchem CID" ]
      ~validator:(Validators.pubchem_id) ~generator:(Generators.pubchem);
    mk "pii" "Personal Identifiable Information" "personal" ~coverage:No_code;
    mk "npi" "National Provider Identifier" "personal"
      ~coverage:Other_language ~validator:(Checksums.npi_valid)
      ~generator:(Generators.npi);
    mk "fei" "FEI identifier" "personal" ~validator:(Tail.fei_valid)
      ~generator:(Tail.fei_gen);
    (* ---------------- Other ---------------- *)
    mk "book-name" "book name" "other" ~coverage:No_code;
    mk "hex-color" "HEX color format" "other" ~alt:[ "hex color code" ]
      ~validator:(Validators.hex_color) ~generator:(Generators.hex_color);
    mk "rgb-color" "RGB color format" "other"
      ~alt:[ "RGB color"; "RGB"; "RGB color code" ]
      ~validator:(Validators.rgb_color) ~generator:(Generators.rgb_color);
    mk "cmyk-color" "CMYK color format" "other" ~alt:[ "CMYK color" ]
      ~validator:(Validators.cmyk_color) ~generator:(Generators.cmyk_color);
    mk "hsl-color" "HSL color format" "other" ~alt:[ "HSL color" ]
      ~validator:(Validators.hsl_color) ~generator:(Generators.hsl_color);
    mk "unix-time" "UNIX time" "other" ~alt:[ "epoch timestamp" ]
      ~validator:(Validators.unix_time) ~generator:(Generators.unix_time);
    mk "http-status" "http status code" "other"
      ~validator:(Validators.http_status)
      ~generator:(Generators.http_status);
    mk "roman-numeral" "roman number" "other" ~alt:[ "roman numeral" ]
      ~validator:(Validators.roman_numeral) ~generator:(Generators.roman);
    mk "html" "HTML" "other" ~alt:[ "html document" ]
      ~validator:(Validators.html_doc) ~generator:(Generators.html_doc);
    mk "json" "JSON" "other" ~alt:[ "json document" ]
      ~validator:(Validators.json_doc) ~generator:(Generators.json_doc);
    mk "xml" "XML" "other" ~alt:[ "xml document" ]
      ~validator:(Validators.xml_doc) ~generator:(Generators.xml_doc);
    mk "datetime" "date time" "other" ~popular:true
      ~alt:[ "date"; "timestamp" ]
      ~validator:(Validators.datetime) ~generator:(Generators.datetime);
    mk "sql" "SQL statement" "other" ~coverage:Complex_invocation
      ~validator:(Validators.sql_query) ~generator:(Generators.sql_query);
    mk "reuters-ric" "Reuters instrument code" "other"
      ~coverage:Complex_invocation ~validator:(Tail.ric_valid)
      ~generator:(Generators.ric);
    mk "oid" "OID number" "other" ~alt:[ "object identifier" ]
      ~validator:(Validators.oid) ~generator:(Generators.oid);
    mk "guid" "Global Unique Identifier" "other" ~alt:[ "GUID"; "UUID" ]
      ~validator:(Validators.guid) ~generator:(Generators.guid);
    mk "isni" "International Standard Name Identifier" "other"
      ~coverage:Complex_invocation ~validator:(Tail.isni_valid)
      ~generator:(Generators.isni);
  ]

let count = List.length all_types

let find id = List.find_opt (fun t -> t.id = id) all_types

let find_exn id =
  match find id with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Registry.find_exn: unknown type %s" id)

let covered = List.filter (fun t -> t.coverage = Covered) all_types

let popular = List.filter (fun t -> t.popular) all_types

let coverage_counts () =
  let count p = List.length (List.filter p all_types) in
  ( count (fun t -> t.coverage = Covered),
    count (fun t -> t.coverage = No_code),
    count (fun t -> t.coverage = Other_language),
    count (fun t -> t.coverage = Complex_invocation) )

(** Around 20 positive examples, matching the experimental setup of
    Section 8.1. *)
let positive_examples ?(n = 20) ~seed ty =
  match ty.generator with
  | Some gen -> Generators.samples (Generators.make_rng seed) gen n
  | None -> []

let coverage_to_string = function
  | Covered -> "covered"
  | No_code -> "no-code"
  | Other_language -> "other-language"
  | Complex_invocation -> "complex-invocation"
