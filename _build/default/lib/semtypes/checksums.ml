(** Checksum algorithms used by rich semantic data types.

    These are the ground-truth implementations against which both the
    example generators and the mined-corpus MiniScript code are tested.
    Each returns [false] (rather than raising) on malformed input so they
    can serve directly as validators. *)

let digit_val c = Char.code c - Char.code '0'

let is_digit c = c >= '0' && c <= '9'

let all_digits s = s <> "" && String.for_all is_digit s

(** Luhn (mod-10) sum of a digit string, doubling every second digit from
    the right. Used by credit cards, IMEI, NPI. *)
let luhn_sum s =
  let n = String.length s in
  let total = ref 0 in
  for i = 0 to n - 1 do
    let d = digit_val s.[n - 1 - i] in
    let d = if i mod 2 = 1 then d * 2 else d in
    total := !total + (if d > 9 then d - 9 else d)
  done;
  !total

let luhn_valid s = all_digits s && luhn_sum s mod 10 = 0

(** The Luhn check digit that must be appended to [body]. *)
let luhn_check_digit body =
  (* Digits shift parity once the check digit is appended. *)
  let n = String.length body in
  let total = ref 0 in
  for i = 0 to n - 1 do
    let d = digit_val body.[n - 1 - i] in
    let d = if i mod 2 = 0 then d * 2 else d in
    total := !total + (if d > 9 then d - 9 else d)
  done;
  (10 - (!total mod 10)) mod 10

(** GS1 (mod-10, weights 3/1 from the right) check digit computation,
    shared by EAN-13, EAN-8, UPC-A, ISBN-13, GTIN and GLN. *)
let gs1_check_digit body =
  let n = String.length body in
  let total = ref 0 in
  for i = 0 to n - 1 do
    let d = digit_val body.[n - 1 - i] in
    total := !total + (d * if i mod 2 = 0 then 3 else 1)
  done;
  (10 - (!total mod 10)) mod 10

let gs1_valid s =
  all_digits s
  && String.length s >= 2
  &&
  let body = String.sub s 0 (String.length s - 1) in
  let check = digit_val s.[String.length s - 1] in
  gs1_check_digit body = check

(** ISBN-10: weighted sum with weights 10..1; check digit may be 'X'. *)
let isbn10_valid s =
  String.length s = 10
  && all_digits (String.sub s 0 9)
  &&
  let sum = ref 0 in
  for i = 0 to 8 do
    sum := !sum + ((10 - i) * digit_val s.[i])
  done;
  let last = s.[9] in
  let check = if last = 'X' || last = 'x' then 10 else if is_digit last then digit_val last else -1 in
  check >= 0 && (!sum + check) mod 11 = 0

let isbn10_check_digit body9 =
  let sum = ref 0 in
  for i = 0 to 8 do
    sum := !sum + ((10 - i) * digit_val body9.[i])
  done;
  let c = (11 - (!sum mod 11)) mod 11 in
  if c = 10 then "X" else string_of_int c

(** ISSN: 8 characters, weighted 8..2, check digit may be 'X'. *)
let issn_valid s =
  String.length s = 8
  && all_digits (String.sub s 0 7)
  &&
  let sum = ref 0 in
  for i = 0 to 6 do
    sum := !sum + ((8 - i) * digit_val s.[i])
  done;
  let last = s.[7] in
  let check = if last = 'X' || last = 'x' then 10 else if is_digit last then digit_val last else -1 in
  check >= 0 && (!sum + check) mod 11 = 0

let issn_check_digit body7 =
  let sum = ref 0 in
  for i = 0 to 6 do
    sum := !sum + ((8 - i) * digit_val body7.[i])
  done;
  let c = (11 - (!sum mod 11)) mod 11 in
  if c = 10 then "X" else string_of_int c

(** ISIN: 12 chars, 2-letter country prefix, alphanumeric body, Luhn over
    the digit expansion (A=10 … Z=35). *)
let isin_expand s =
  let buf = Buffer.create 24 in
  String.iter
    (fun c ->
      if is_digit c then Buffer.add_char buf c
      else if c >= 'A' && c <= 'Z' then
        Buffer.add_string buf (string_of_int (Char.code c - Char.code 'A' + 10))
      else Buffer.add_char buf '?')
    s;
  Buffer.contents buf

let isin_valid s =
  String.length s = 12
  && s.[0] >= 'A' && s.[0] <= 'Z'
  && s.[1] >= 'A' && s.[1] <= 'Z'
  && String.for_all (fun c -> is_digit c || (c >= 'A' && c <= 'Z')) s
  &&
  let expanded = isin_expand s in
  (not (String.contains expanded '?')) && luhn_valid expanded

let isin_check_digit body11 =
  let expanded = isin_expand body11 in
  luhn_check_digit expanded

(** VIN (ISO 3779): 17 chars, no I/O/Q, weighted transliterated sum mod 11;
    position 9 is the check digit ('X' for 10). *)
let vin_translit c =
  match c with
  | '0' .. '9' -> digit_val c
  | 'A' | 'J' -> 1
  | 'B' | 'K' | 'S' -> 2
  | 'C' | 'L' | 'T' -> 3
  | 'D' | 'M' | 'U' -> 4
  | 'E' | 'N' | 'V' -> 5
  | 'F' | 'W' -> 6
  | 'G' | 'P' | 'X' -> 7
  | 'H' | 'Y' -> 8
  | 'R' | 'Z' -> 9
  | _ -> -1

let vin_weights = [| 8; 7; 6; 5; 4; 3; 2; 10; 0; 9; 8; 7; 6; 5; 4; 3; 2 |]

let vin_valid s =
  String.length s = 17
  && (not (String.exists (fun c -> c = 'I' || c = 'O' || c = 'Q') s))
  && String.for_all
       (fun c -> is_digit c || (c >= 'A' && c <= 'Z'))
       s
  &&
  let sum = ref 0 and ok = ref true in
  String.iteri
    (fun i c ->
      if i <> 8 then begin
        let v = vin_translit c in
        if v < 0 then ok := false else sum := !sum + (v * vin_weights.(i))
      end)
    s;
  !ok
  &&
  let rem = !sum mod 11 in
  let expected = if rem = 10 then 'X' else Char.chr (rem + Char.code '0') in
  s.[8] = expected

let vin_check_digit body17_with_placeholder =
  let sum = ref 0 in
  String.iteri
    (fun i c ->
      if i <> 8 then sum := !sum + (vin_translit c * vin_weights.(i)))
    body17_with_placeholder;
  let rem = !sum mod 11 in
  if rem = 10 then 'X' else Char.chr (rem + Char.code '0')

(** IBAN: move first 4 chars to the end, transliterate letters to numbers
    (A=10…), the big number mod 97 must equal 1.  Length checked against a
    small per-country table. *)
let iban_lengths =
  [ ("DE", 22); ("GB", 22); ("FR", 27); ("ES", 24); ("IT", 27); ("NL", 18);
    ("BE", 16); ("CH", 21); ("AT", 20); ("PT", 25); ("SE", 24); ("NO", 15);
    ("DK", 18); ("FI", 18); ("PL", 28); ("IE", 22); ("LU", 20) ]

let mod97_of_string digits =
  (* Streaming mod 97 so arbitrarily long numerals fit in an int. *)
  String.fold_left
    (fun acc c ->
      if is_digit c then ((acc * 10) + digit_val c) mod 97 else -1000000)
    0 digits

let iban_valid s =
  let s = String.uppercase_ascii s in
  String.length s >= 15
  && String.length s <= 34
  && String.for_all (fun c -> is_digit c || (c >= 'A' && c <= 'Z')) s
  &&
  let cc = String.sub s 0 2 in
  (match List.assoc_opt cc iban_lengths with
   | Some l -> String.length s = l
   | None -> false)
  &&
  let rearranged = String.sub s 4 (String.length s - 4) ^ String.sub s 0 4 in
  let buf = Buffer.create 64 in
  String.iter
    (fun c ->
      if is_digit c then Buffer.add_char buf c
      else Buffer.add_string buf (string_of_int (Char.code c - Char.code 'A' + 10)))
    rearranged;
  mod97_of_string (Buffer.contents buf) = 1

(** ABA routing number: 9 digits, weights 3-7-1 repeating, sum mod 10 = 0. *)
let aba_valid s =
  String.length s = 9
  && all_digits s
  &&
  let w = [| 3; 7; 1; 3; 7; 1; 3; 7; 1 |] in
  let sum = ref 0 in
  String.iteri (fun i c -> sum := !sum + (w.(i) * digit_val c)) s;
  !sum mod 10 = 0

(** CUSIP: 9 chars; char values 0-9, A=10…Z=35, '*'=36, '@'=37, '#'=38;
    modified Luhn over first 8, 9th is check digit. *)
let cusip_char_val c =
  if is_digit c then digit_val c
  else if c >= 'A' && c <= 'Z' then Char.code c - Char.code 'A' + 10
  else if c = '*' then 36
  else if c = '@' then 37
  else if c = '#' then 38
  else -1

let cusip_check_digit body8 =
  let sum = ref 0 in
  String.iteri
    (fun i c ->
      let v = cusip_char_val c in
      let v = if i mod 2 = 1 then v * 2 else v in
      sum := !sum + (v / 10) + (v mod 10))
    body8;
  (10 - (!sum mod 10)) mod 10

let cusip_valid s =
  String.length s = 9
  && String.for_all (fun c -> cusip_char_val c >= 0) s
  && is_digit s.[8]
  && cusip_check_digit (String.sub s 0 8) = digit_val s.[8]

(** SEDOL: 7 chars, weights 1,3,1,7,3,9,1; vowels excluded; sum mod 10 = 0. *)
let sedol_char_val c =
  if is_digit c then digit_val c
  else if c >= 'B' && c <= 'Z' && not (List.mem c [ 'A'; 'E'; 'I'; 'O'; 'U' ])
  then Char.code c - Char.code 'A' + 10
  else -1

let sedol_weights = [| 1; 3; 1; 7; 3; 9; 1 |]

let sedol_valid s =
  String.length s = 7
  && (let ok = ref true in
      String.iteri
        (fun i c ->
          let valid_char =
            if i = 6 then is_digit c else sedol_char_val c >= 0
          in
          if not valid_char then ok := false)
        s;
      !ok)
  &&
  let sum = ref 0 in
  String.iteri
    (fun i c ->
      let v = if is_digit c then digit_val c else sedol_char_val c in
      sum := !sum + (v * sedol_weights.(i)))
    s;
  !sum mod 10 = 0

let sedol_check_digit body6 =
  let sum = ref 0 in
  String.iteri
    (fun i c -> sum := !sum + (sedol_char_val c * sedol_weights.(i)))
    body6;
  (10 - (!sum mod 10)) mod 10

(** NHS number: 10 digits, weights 10..2 over first 9, check = 11 - sum mod
    11 (11→0, 10 invalid). *)
let nhs_valid s =
  String.length s = 10
  && all_digits s
  &&
  let sum = ref 0 in
  for i = 0 to 8 do
    sum := !sum + ((10 - i) * digit_val s.[i])
  done;
  let c = 11 - (!sum mod 11) in
  let c = if c = 11 then 0 else c in
  c <> 10 && c = digit_val s.[9]

let nhs_check_digit body9 =
  let sum = ref 0 in
  for i = 0 to 8 do
    sum := !sum + ((10 - i) * digit_val body9.[i])
  done;
  let c = 11 - (!sum mod 11) in
  if c = 11 then Some 0 else if c = 10 then None else Some c

(** IMEI: 15 digits, plain Luhn. *)
let imei_valid s = String.length s = 15 && luhn_valid s

(** ORCID: 16 digits displayed as XXXX-XXXX-XXXX-XXXX, ISO 7064 mod 11-2;
    check char may be X. *)
let orcid_checksum body15 =
  let total = ref 0 in
  String.iter (fun c -> total := ((!total + digit_val c) * 2) mod 11) body15;
  let result = (12 - (!total mod 11)) mod 11 in
  if result = 10 then 'X' else Char.chr (result + Char.code '0')

let orcid_valid_compact s =
  String.length s = 16
  && all_digits (String.sub s 0 15)
  && (is_digit s.[15] || s.[15] = 'X')
  && orcid_checksum (String.sub s 0 15) = s.[15]

(** Chinese resident ID: 18 chars, ISO 7064 mod 11-2 with explicit
    weights; check char may be X. *)
let cn_id_weights = [| 7; 9; 10; 5; 8; 4; 2; 1; 6; 3; 7; 9; 10; 5; 8; 4; 2 |]

let cn_id_check_char body17 =
  let sum = ref 0 in
  String.iteri (fun i c -> sum := !sum + (digit_val c * cn_id_weights.(i))) body17;
  let m = !sum mod 11 in
  "10X98765432".[m]

let cn_id_valid s =
  String.length s = 18
  && all_digits (String.sub s 0 17)
  && cn_id_check_char (String.sub s 0 17) = Char.uppercase_ascii s.[17]

(** GS1-based composites reused directly. *)
let ean13_valid s = String.length s = 13 && gs1_valid s
let ean8_valid s = String.length s = 8 && gs1_valid s
let upca_valid s = String.length s = 12 && gs1_valid s
let isbn13_valid s =
  String.length s = 13
  && (String.length s >= 3
      && (String.sub s 0 3 = "978" || String.sub s 0 3 = "979"))
  && gs1_valid s
let gln_valid s = String.length s = 13 && gs1_valid s
let gtin14_valid s = String.length s = 14 && gs1_valid s

(** NPI: 10 digits; Luhn over "80840" ^ number. *)
let npi_valid s =
  String.length s = 10 && all_digits s && luhn_valid ("80840" ^ s)
