(** Validators and generators for the remaining "tail" benchmark types
    that are not covered by {!Validators}/{!Generators}, plus
    normalizing wrappers used by the registry (e.g. ISSN with or without
    the hyphen). *)

let is_digit c = c >= '0' && c <= '9'
let is_upper c = c >= 'A' && c <= 'Z'
let all p s = s <> "" && String.for_all p s
let int_in = Generators.int_in
let digits = Generators.digits

let strip_chars chars s =
  String.to_seq s
  |> Seq.filter (fun c -> not (String.contains chars c))
  |> String.of_seq

(* ATC code: letter, 2 digits, 2 letters, 2 digits — e.g. A10BA02. *)
let atc_valid s =
  String.length s = 7
  && is_upper s.[0]
  && is_digit s.[1] && is_digit s.[2]
  && is_upper s.[3] && is_upper s.[4]
  && is_digit s.[5] && is_digit s.[6]

let atc_gen rng =
  Printf.sprintf "%c%02d%s%02d"
    (String.get "ABCDGHJLMNPRSV" (Random.State.int rng 14))
    (int_in rng 1 16)
    (Generators.upper_letters rng 2)
    (int_in rng 1 99)

(* SNP ID: "rs" followed by 3-9 digits. *)
let snpid_valid s =
  String.length s >= 5
  && String.length s <= 11
  && String.sub s 0 2 = "rs"
  && all is_digit (String.sub s 2 (String.length s - 2))

let snpid_gen rng = "rs" ^ digits rng (int_in rng 3 9)

(* FDA National Drug Code: 5-4-2 digit segments. *)
let ndc_valid s =
  match String.split_on_char '-' s with
  | [ a; b; c ] ->
    String.length a = 5 && String.length b = 4 && String.length c = 2
    && all is_digit a && all is_digit b && all is_digit c
  | _ -> false

let ndc_gen rng =
  Printf.sprintf "%s-%s-%s" (digits rng 5) (digits rng 4) (digits rng 2)

(* Drug names: a lookup list, like the corpus code that resolves names
   against a reference table (the "web service lookup" pattern). *)
let drug_names =
  [ "Aspirin"; "Ibuprofen"; "Acetaminophen"; "Amoxicillin"; "Lisinopril";
    "Metformin"; "Atorvastatin"; "Omeprazole"; "Amlodipine"; "Metoprolol";
    "Simvastatin"; "Losartan"; "Gabapentin"; "Sertraline"; "Furosemide";
    "Prednisone"; "Tramadol"; "Citalopram"; "Warfarin"; "Insulin";
    "Azithromycin"; "Hydrochlorothiazide"; "Levothyroxine"; "Alprazolam";
    "Ciprofloxacin"; "Doxycycline"; "Naproxen"; "Pantoprazole" ]

let drug_name_valid s = List.mem s drug_names
let drug_name_gen rng = Generators.pick rng drug_names

(* FDA Establishment Identifier: 7 or 10 digits, 10-digit form starts 30. *)
let fei_valid s =
  (String.length s = 7 && all is_digit s)
  || (String.length s = 10 && all is_digit s && String.sub s 0 2 = "30")

let fei_gen rng =
  if Random.State.bool rng then digits rng 7 else "30" ^ digits rng 8

(* --------------------- normalizing wrappers ----------------------- *)

let credit_card_valid s =
  let c = strip_chars " -" s in
  let n = String.length c in
  n >= 13 && n <= 19 && Checksums.luhn_valid c
  && (c.[0] = '3' || c.[0] = '4' || c.[0] = '5' || c.[0] = '6')

let isbn_valid s =
  let c = strip_chars "- " s in
  Checksums.isbn13_valid c || Checksums.isbn10_valid c

let issn_valid s =
  let c = strip_chars "-" s in
  Checksums.issn_valid c

let orcid_valid s =
  let c = strip_chars "-" s in
  Checksums.orcid_valid_compact c

let isni_valid s =
  let c = strip_chars " " s in
  Checksums.orcid_valid_compact c  (* same ISO 7064 mod 11-2 scheme *)

let iban_valid s = Checksums.iban_valid (strip_chars " " s)

let vin_valid s = Checksums.vin_valid (String.uppercase_ascii s)

let imei_valid s = Checksums.imei_valid (strip_chars " -" s)

let upc_valid s = Checksums.upca_valid (strip_chars " " s)

let ean_valid s =
  let c = strip_chars " -" s in
  Checksums.ean13_valid c || Checksums.ean8_valid c

(* TAF aviation forecast (uncovered type; ground truth only). *)
let taf_valid s =
  String.length s > 4
  && String.sub s 0 4 = "TAF "
  && String.length s > 10

(* Reuters Instrument Code (uncovered; complex invocation in the paper). *)
let ric_valid s =
  match String.index_opt s '.' with
  | Some i when i >= 1 && i < String.length s - 1 ->
    let base = String.sub s 0 i in
    let ex = String.sub s (i + 1) (String.length s - i - 1) in
    all (fun c -> is_upper c || is_digit c) base
    && String.length ex >= 1 && String.length ex <= 2
    && all is_upper ex
  | _ -> false
