(** The 112-type benchmark registry (Appendix A of the paper).

    84 types are covered by corpus code; of the remaining 28, twelve
    have no relevant code at all, twelve have validation code only in
    other languages, and four need complex chained invocations the
    analyzer (like the paper's) does not support (Section 8.2.2). *)

type coverage =
  | Covered
  | No_code
  | Other_language
  | Complex_invocation

type t = {
  id : string;  (** stable slug, e.g. "credit-card" *)
  name : string;  (** canonical search keyword *)
  alt_keywords : string list;  (** Appendix I / Table 4 alternates *)
  domain : string;
  popular : bool;  (** one of the 20 popular types of Appendix I *)
  coverage : coverage;
  validator : (string -> bool) option;  (** ground truth *)
  generator : (Generators.rng -> string) option;  (** positive examples *)
}

val all_types : t list
val count : int

val find : string -> t option
val find_exn : string -> t

val covered : t list
val popular : t list

val coverage_counts : unit -> int * int * int * int
(** (covered, no-code, other-language, complex-invocation). *)

val positive_examples : ?n:int -> seed:int -> t -> string list
(** Around 20 deterministic positive examples (Section 8.1). *)

val coverage_to_string : coverage -> string
