(** Checksum algorithms used by rich semantic data types — the ground
    truth against which generators and mined corpus code are tested.
    Validators return [false] on malformed input rather than raising. *)

val digit_val : char -> int
val is_digit : char -> bool
val all_digits : string -> bool

(** {2 Luhn (mod 10)} — credit cards, IMEI, NPI *)

val luhn_sum : string -> int
val luhn_valid : string -> bool
val luhn_check_digit : string -> int
(** The digit to append to make the body Luhn-valid. *)

(** {2 GS1 (mod 10, weights 3/1)} — EAN, UPC, ISBN-13, GTIN, GLN, ISMN *)

val gs1_check_digit : string -> int
val gs1_valid : string -> bool
val ean13_valid : string -> bool
val ean8_valid : string -> bool
val upca_valid : string -> bool
val isbn13_valid : string -> bool
val gln_valid : string -> bool
val gtin14_valid : string -> bool

(** {2 Mod-11 families} *)

val isbn10_valid : string -> bool
val isbn10_check_digit : string -> string
(** May be "X". *)

val issn_valid : string -> bool
val issn_check_digit : string -> string

val nhs_valid : string -> bool
val nhs_check_digit : string -> int option
(** [None] when the body has no valid check digit (remainder 10). *)

(** {2 Alphanumeric expansions} *)

val isin_expand : string -> string
val isin_valid : string -> bool
val isin_check_digit : string -> int

val vin_translit : char -> int
val vin_weights : int array
val vin_valid : string -> bool
val vin_check_digit : string -> char
(** Computed over a 17-char string whose position 9 is a placeholder. *)

(** {2 Mod-97 (ISO 7064)} — IBAN, LEI *)

val iban_lengths : (string * int) list
val mod97_of_string : string -> int
val iban_valid : string -> bool

(** {2 Other weighted schemes} *)

val aba_valid : string -> bool
val cusip_char_val : char -> int
val cusip_check_digit : string -> int
val cusip_valid : string -> bool
val sedol_char_val : char -> int
val sedol_weights : int array
val sedol_valid : string -> bool
val sedol_check_digit : string -> int
val imei_valid : string -> bool
val npi_valid : string -> bool

(** {2 ISO 7064 mod 11-2} — ORCID, ISNI, Chinese resident ID *)

val orcid_checksum : string -> char
val orcid_valid_compact : string -> bool
val cn_id_weights : int array
val cn_id_check_char : string -> char
val cn_id_valid : string -> bool
