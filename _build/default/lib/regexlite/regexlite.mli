(** A small backtracking regular-expression engine.

    Supports literals, [.], escapes ([\d \D \w \W \s \S]), character
    classes with ranges and negation, grouping, alternation, the
    [* + ?] quantifiers, bounded repetition [{m}] [{m,n}] [{m,}], and
    the [^ $] anchors.  Backtracking is fuel-bounded, so pathological
    patterns terminate instead of hanging (a sandboxing requirement for
    mined code). *)

type t
(** A compiled pattern. *)

exception Parse_error of string

val parse : string -> t
(** @raise Parse_error on malformed patterns. *)

val source : t -> string
(** The original pattern text. *)

val match_at : ?fuel:int -> t -> string -> int -> int option
(** [match_at re s i] matches starting exactly at offset [i]; returns
    the end offset of a match, or [None].  Exhausting [fuel] counts as
    no match. *)

val match_prefix : t -> string -> int option
(** Python [re.match] semantics: anchored at offset 0, returns the end
    offset of the (greedy) match. *)

val full_match : t -> string -> bool
(** Python [re.fullmatch] semantics: the whole string must match. *)

val search : t -> string -> (int * int) option
(** Python [re.search] semantics: first offset pair [(start, stop)] at
    which the pattern matches. *)

val matches : t -> string -> bool
(** Alias for {!full_match}. *)

val string_matches : string -> string -> bool
(** [string_matches pattern s] compiles and fully matches in one step. *)
