(** A small backtracking regular-expression engine.

    Supports the subset of syntax that appears in real-world
    type-validation code and in Potter's-Wheel-style inferred patterns:

    - literals, [.], escapes [\d \D \w \W \s \S], character classes
      [[a-z0-9_]] with negation [[^...]] and ranges,
    - grouping [( )], alternation [|],
    - quantifiers [* + ?] and bounded repetition [{m}] [{m,n}] [{m,}],
    - anchors [^] and [$].

    Used both by MiniScript's [re_match]/[re_search] builtins (mined code
    frequently validates with regexes, Section 8.2.2) and by the REGEX
    baseline of Section 9. *)

type node =
  | Lit of char
  | Any
  | Class of (char * char) list * bool  (** ranges, negated? *)
  | Star of node * bool  (** greedy flag reserved; always greedy here *)
  | Plus of node
  | Opt of node
  | Repeat of node * int * int option  (** {m,n}; None = unbounded *)
  | Seq of node list
  | Alt of node list
  | Group of node
  | Bol
  | Eol

exception Parse_error of string

type t = { ast : node; source : string }

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let parse (pattern : string) : t =
  let n = String.length pattern in
  let pos = ref 0 in
  let peek () = if !pos < n then Some pattern.[!pos] else None in
  let advance () = incr pos in
  let eat c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> raise (Parse_error (Printf.sprintf "expected %C at %d" c !pos))
  in
  let escape_class c =
    match c with
    | 'd' -> Some ([ ('0', '9') ], false)
    | 'D' -> Some ([ ('0', '9') ], true)
    | 'w' -> Some ([ ('a', 'z'); ('A', 'Z'); ('0', '9'); ('_', '_') ], false)
    | 'W' -> Some ([ ('a', 'z'); ('A', 'Z'); ('0', '9'); ('_', '_') ], true)
    | 's' -> Some ([ (' ', ' '); ('\t', '\t'); ('\n', '\n'); ('\r', '\r') ], false)
    | 'S' -> Some ([ (' ', ' '); ('\t', '\t'); ('\n', '\n'); ('\r', '\r') ], true)
    | _ -> None
  in
  let parse_escape () =
    advance ();  (* consume backslash *)
    match peek () with
    | None -> raise (Parse_error "dangling backslash")
    | Some c ->
      advance ();
      (match escape_class c with
       | Some (ranges, neg) -> Class (ranges, neg)
       | None ->
         (match c with
          | 'n' -> Lit '\n'
          | 't' -> Lit '\t'
          | 'r' -> Lit '\r'
          | _ -> Lit c))
  in
  let parse_class () =
    eat '[';
    let negated =
      match peek () with
      | Some '^' -> advance (); true
      | _ -> false
    in
    let ranges = ref [] in
    let rec loop first =
      match peek () with
      | None -> raise (Parse_error "unterminated character class")
      | Some ']' when not first -> advance ()
      | Some c ->
        advance ();
        let c =
          if c = '\\' then begin
            match peek () with
            | Some e ->
              advance ();
              (match escape_class e with
               | Some (rs, false) ->
                 ranges := rs @ !ranges;
                 '\000'  (* sentinel: ranges already added *)
               | Some (_, true) ->
                 raise (Parse_error "negated escape inside class")
               | None ->
                 (match e with 'n' -> '\n' | 't' -> '\t' | 'r' -> '\r' | c -> c))
            | None -> raise (Parse_error "dangling backslash in class")
          end
          else c
        in
        if c <> '\000' then begin
          match peek () with
          | Some '-' when (match !pos + 1 < n with
                           | true -> pattern.[!pos + 1] <> ']'
                           | false -> false) ->
            advance ();
            (match peek () with
             | Some hi ->
               advance ();
               if hi < c then raise (Parse_error "inverted range");
               ranges := (c, hi) :: !ranges
             | None -> raise (Parse_error "unterminated range"))
          | _ -> ranges := (c, c) :: !ranges
        end;
        loop false
    in
    loop true;
    Class (List.rev !ranges, negated)
  in
  let parse_int () =
    let start = !pos in
    while (match peek () with Some c when c >= '0' && c <= '9' -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then raise (Parse_error "expected number in repetition");
    int_of_string (String.sub pattern start (!pos - start))
  in
  let rec parse_alt () =
    let first = parse_seq () in
    let rec loop acc =
      match peek () with
      | Some '|' ->
        advance ();
        loop (parse_seq () :: acc)
      | _ -> List.rev acc
    in
    match loop [ first ] with
    | [ single ] -> single
    | alts -> Alt alts
  and parse_seq () =
    let rec loop acc =
      match peek () with
      | None | Some '|' | Some ')' -> List.rev acc
      | Some _ -> loop (parse_quantified () :: acc)
    in
    match loop [] with
    | [ single ] -> single
    | items -> Seq items
  and parse_quantified () =
    let atom = parse_atom () in
    let rec apply atom =
      match peek () with
      | Some '*' -> advance (); apply (Star (atom, true))
      | Some '+' -> advance (); apply (Plus atom)
      | Some '?' -> advance (); apply (Opt atom)
      | Some '{' ->
        advance ();
        let m = parse_int () in
        let node =
          match peek () with
          | Some '}' -> advance (); Repeat (atom, m, Some m)
          | Some ',' ->
            advance ();
            (match peek () with
             | Some '}' -> advance (); Repeat (atom, m, None)
             | _ ->
               let hi = parse_int () in
               eat '}';
               if hi < m then raise (Parse_error "inverted repetition bounds");
               Repeat (atom, m, Some hi))
          | _ -> raise (Parse_error "malformed repetition")
        in
        apply node
      | _ -> atom
    in
    apply atom
  and parse_atom () =
    match peek () with
    | None -> raise (Parse_error "unexpected end of pattern")
    | Some '(' ->
      advance ();
      (* Ignore non-capturing marker. *)
      if !pos + 1 < n && pattern.[!pos] = '?' && pattern.[!pos + 1] = ':' then begin
        advance (); advance ()
      end;
      let inner = parse_alt () in
      eat ')';
      Group inner
    | Some '[' -> parse_class ()
    | Some '\\' -> parse_escape ()
    | Some '.' -> advance (); Any
    | Some '^' -> advance (); Bol
    | Some '$' -> advance (); Eol
    | Some ('*' | '+' | '?') ->
      raise (Parse_error "quantifier with nothing to repeat")
    | Some c -> advance (); Lit c
  in
  let ast = parse_alt () in
  if !pos <> n then raise (Parse_error "trailing characters in pattern");
  { ast; source = pattern }

(* ------------------------------------------------------------------ *)
(* Matcher: CPS backtracking with a fuel bound to avoid pathological    *)
(* blow-ups on adversarial corpus patterns (sandboxing concern).        *)
(* ------------------------------------------------------------------ *)

exception Out_of_fuel

let class_matches ranges negated c =
  let inside = List.exists (fun (lo, hi) -> c >= lo && c <= hi) ranges in
  if negated then not inside else inside

let match_at ?(fuel = 2_000_000) (re : t) (s : string) (start : int) :
    int option =
  let n = String.length s in
  let fuel = ref fuel in
  let burn () =
    decr fuel;
    if !fuel <= 0 then raise Out_of_fuel
  in
  (* k: int -> bool receives the position after the node matched. *)
  let rec m node i (k : int -> bool) : bool =
    burn ();
    match node with
    | Lit c -> i < n && s.[i] = c && k (i + 1)
    | Any -> i < n && k (i + 1)
    | Class (ranges, neg) -> i < n && class_matches ranges neg s.[i] && k (i + 1)
    | Bol -> i = 0 && k i
    | Eol -> i = n && k i
    | Group g -> m g i k
    | Seq items ->
      let rec seq items i =
        match items with
        | [] -> k i
        | hd :: tl -> m hd i (fun j -> seq tl j)
      in
      seq items i
    | Alt alts -> List.exists (fun a -> m a i k) alts
    | Opt g -> m g i k || k i
    | Star (g, _) ->
      let rec star i =
        m g i (fun j -> j > i && star j) || k i
      in
      star i
    | Plus g -> m g i (fun j -> m (Star (g, true)) j k)
    | Repeat (g, lo, hi) ->
      let rec rep count i =
        let can_stop = count >= lo in
        let can_more =
          match hi with None -> true | Some h -> count < h
        in
        (can_more && m g i (fun j -> (j > i || count + 1 >= lo) && rep (count + 1) j))
        || (can_stop && k i)
      in
      rep 0 i
  in
  let result = ref None in
  let found =
    try m re.ast start (fun j -> result := Some j; true)
    with Out_of_fuel -> false
  in
  if found then !result else None

(** Does the pattern match a prefix of [s] starting at 0? (Python
    [re.match] semantics.) Returns the end offset of the match. *)
let match_prefix re s = match_at re s 0

(** Does the pattern match the entire string? (Python [re.fullmatch].) *)
let full_match re s =
  match match_at re s 0 with
  | Some j when j = String.length s -> true
  | Some _ ->
    (* Backtrack-search for a full-length match: wrap with $ semantics. *)
    let anchored = { re with ast = Seq [ re.ast; Eol ] } in
    (match match_at anchored s 0 with Some _ -> true | None -> false)
  | None -> false

(** First position at which the pattern matches (Python [re.search]).
    Returns (start, end) offsets. *)
let search re s =
  let n = String.length s in
  let rec go i =
    if i > n then None
    else
      match match_at re s i with
      | Some j -> Some (i, j)
      | None -> go (i + 1)
  in
  go 0

let matches re s = full_match re s

(** Convenience: compile and fully match in one step. *)
let string_matches pattern s =
  let re = parse pattern in
  full_match re s

let source re = re.source
