(** Synthetic web-table column corpus (Section 9.1), replacing the
    paper's 60K-column sample of Bing's web-table index.  Type counts
    follow Table 2's union-all proportions; headers may be descriptive,
    generic, missing or misleading; traps reproduce the paper's
    false-positive and false-negative analyses. *)

type column = {
  header : string option;
  values : string list;
  truth : string option;  (** benchmark type id; [None] for untyped *)
  note : string;  (** generator provenance, for error analysis *)
}

val type_weights : (string * int) list
(** Per-type column weights proportional to Table 2's union-all row. *)

val absent_popular_types : string list
(** The 5 popular types with no columns in the corpus (the paper finds
    valid columns for only 15 of 20 types). *)

type config = {
  n_columns : int;
  values_per_column : int;
  dirty_fraction : float;
  seed : int;
}

val default_config : config

val generate : ?config:config -> unit -> column list
(** Deterministic in [config.seed]. *)
