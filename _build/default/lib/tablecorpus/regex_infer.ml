(** Potter's-Wheel-style structure inference (Raman & Hellerstein,
    VLDB 2001), used by the REGEX baseline of Section 9.1: "we
    automatically generate regex from positive examples P ... using
    techniques described in Potter's Wheel."

    Each example is abstracted into a sequence of structure tokens
    (digit runs, letter runs, punctuation literals).  Signatures are
    unified across examples: runs of the same class merge their length
    ranges; examples whose token sequences disagree yield a disjunction.
    If the examples are too heterogeneous (more than [max_disjuncts]
    distinct shapes), inference fails — reproducing the paper's finding
    that mixed-format inputs defeat the regex approach. *)

type token =
  | Digits of int * int  (** length range *)
  | Letters of int * int
  | Alnum of int * int
  | Punct of char  (** literal punctuation character *)

type signature = token list

type t = { disjuncts : signature list }

let max_disjuncts = 4

let classify c =
  if c >= '0' && c <= '9' then `Digit
  else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') then `Letter
  else `Punct

let tokenize (s : string) : signature =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match classify s.[i] with
      | `Punct -> go (i + 1) (Punct s.[i] :: acc)
      | (`Digit | `Letter) as cls ->
        let j = ref (i + 1) in
        while !j < n && classify s.[!j] = cls do incr j done;
        let len = !j - i in
        let tok =
          match cls with
          | `Digit -> Digits (len, len)
          | `Letter -> Letters (len, len)
        in
        go !j (tok :: acc)
  in
  go 0 []

(* Can two signatures be unified token-by-token? *)
let rec unify (a : signature) (b : signature) : signature option =
  match (a, b) with
  | [], [] -> Some []
  | Punct x :: ta, Punct y :: tb when x = y ->
    Option.map (fun rest -> Punct x :: rest) (unify ta tb)
  | Digits (l1, h1) :: ta, Digits (l2, h2) :: tb ->
    Option.map (fun rest -> Digits (min l1 l2, max h1 h2) :: rest) (unify ta tb)
  | Letters (l1, h1) :: ta, Letters (l2, h2) :: tb ->
    Option.map (fun rest -> Letters (min l1 l2, max h1 h2) :: rest)
      (unify ta tb)
  | Alnum (l1, h1) :: ta, Alnum (l2, h2) :: tb
  | Alnum (l1, h1) :: ta, Digits (l2, h2) :: tb
  | Digits (l1, h1) :: ta, Alnum (l2, h2) :: tb
  | Alnum (l1, h1) :: ta, Letters (l2, h2) :: tb
  | Letters (l1, h1) :: ta, Alnum (l2, h2) :: tb ->
    Option.map (fun rest -> Alnum (min l1 l2, max h1 h2) :: rest) (unify ta tb)
  | _ -> None

(** Infer a structure pattern from examples.  [None] when the examples
    are too heterogeneous. *)
let infer (examples : string list) : t option =
  let sigs = List.map tokenize examples in
  let disjuncts =
    List.fold_left
      (fun acc s ->
        let rec insert = function
          | [] -> [ s ]
          | d :: rest ->
            (match unify d s with
             | Some merged -> merged :: rest
             | None -> d :: insert rest)
        in
        insert acc)
      [] sigs
  in
  if disjuncts = [] || List.length disjuncts > max_disjuncts then None
  else Some { disjuncts }

let token_matches tok (s : string) (i : int) : int list =
  (* Returns the possible end offsets for this token starting at i. *)
  let n = String.length s in
  match tok with
  | Punct c -> if i < n && s.[i] = c then [ i + 1 ] else []
  | Digits (lo, hi) | Letters (lo, hi) | Alnum (lo, hi) ->
    let ok c =
      match tok with
      | Digits _ -> classify c = `Digit
      | Letters _ -> classify c = `Letter
      | Alnum _ -> classify c <> `Punct
      | Punct _ -> false
    in
    let max_run =
      let j = ref i in
      while !j < n && ok s.[!j] do incr j done;
      !j - i
    in
    if max_run < lo then []
    else
      List.init (min hi max_run - lo + 1) (fun k -> i + lo + k)
      |> List.rev  (* prefer the longest run: greedy first *)

let signature_matches (sg : signature) (s : string) : bool =
  let rec go toks i =
    match toks with
    | [] -> i = String.length s
    | tok :: rest ->
      List.exists (fun j -> go rest j) (token_matches tok s i)
  in
  go sg 0

let matches (t : t) (s : string) : bool =
  List.exists (fun sg -> signature_matches sg s) t.disjuncts

let token_to_string = function
  | Digits (lo, hi) ->
    if lo = hi then Printf.sprintf "\\d{%d}" lo
    else Printf.sprintf "\\d{%d,%d}" lo hi
  | Letters (lo, hi) ->
    if lo = hi then Printf.sprintf "[A-Za-z]{%d}" lo
    else Printf.sprintf "[A-Za-z]{%d,%d}" lo hi
  | Alnum (lo, hi) ->
    if lo = hi then Printf.sprintf "\\w{%d}" lo
    else Printf.sprintf "\\w{%d,%d}" lo hi
  | Punct c -> Printf.sprintf "%c" c

let to_string (t : t) =
  String.concat " | "
    (List.map
       (fun sg -> String.concat "" (List.map token_to_string sg))
       t.disjuncts)
