(** Synthetic web-table column corpus (Section 9.1).

    The paper samples 60K columns from Bing's web-table index.  We
    generate a seeded corpus with the same statistical structure:

    - typed columns for 15 of the 20 popular types, with per-type counts
      proportional to Table 2's union-all row (datetime dominates,
      creditcard is rare); the other 5 popular types get no columns,
      reproducing "valid columns are found for 15 types out of the 20";
    - headers that are descriptive, generic ("name", "value") or missing;
    - ~10% dirty cells per typed column (meta-data rows, N/A, stray
      values), below the 80% detection threshold's tolerance;
    - ambiguity traps: version-number columns that look like IPv4,
      numeric-range columns that look like dates (Section 9.2);
    - composite-value columns ("ISBN 9784063641677", address + phone);
    - a long tail of untyped columns (words, numbers, codes). *)

type column = {
  header : string option;
  values : string list;
  truth : string option;  (** benchmark type id, None for untyped *)
  note : string;  (** generator provenance, for error analysis *)
}

(* Per-type column weights proportional to Table 2's union-all row. *)
let type_weights =
  [ ("datetime", 3069); ("address", 358); ("country-code", 155);
    ("phone", 82); ("currency", 37); ("email", 37); ("us-zipcode", 23);
    ("url", 16); ("ipv4", 11); ("isbn", 12); ("upc", 3); ("ean", 4);
    ("isin", 1); ("issn", 1); ("credit-card", 1) ]

(* The 5 popular types that occur in no column (Section 9.2 finds
   columns for only 15 of 20 types). *)
let absent_popular_types =
  [ "ipv6"; "iban"; "vin"; "stock-ticker"; "airport-code" ]

let descriptive_headers =
  [ ("datetime", [ "date"; "order date"; "published"; "last updated" ]);
    ("address", [ "address"; "location"; "office address" ]);
    ("country-code", [ "country"; "nation" ]);
    ("phone", [ "phone"; "telephone"; "contact" ]);
    ("currency", [ "price"; "amount"; "cost" ]);
    ("email", [ "email"; "e-mail"; "contact email" ]);
    ("us-zipcode", [ "zip"; "zipcode"; "postal code" ]);
    ("url", [ "url"; "website"; "link" ]);
    ("ipv4", [ "ip"; "ip address"; "server" ]);
    ("isbn", [ "isbn"; "isbn-13" ]);
    ("upc", [ "upc"; "barcode" ]);
    ("ean", [ "ean"; "ean-13" ]);
    ("isin", [ "isin" ]);
    ("issn", [ "issn" ]);
    ("credit-card", [ "card number"; "cc" ]) ]

let generic_headers = [ "name"; "value"; "id"; "code"; "field"; "data"; "col1" ]

type config = {
  n_columns : int;
  values_per_column : int;
  dirty_fraction : float;
  seed : int;
}

let default_config =
  { n_columns = 6000; values_per_column = 12; dirty_fraction = 0.08; seed = 23 }

let scale_counts total =
  (* Scale Table 2 proportions down to [total] typed columns. *)
  let weight_sum =
    List.fold_left (fun acc (_, w) -> acc + w) 0 type_weights
  in
  List.map
    (fun (ty, w) ->
      let n = max 1 (w * total / weight_sum) in
      (ty, n))
    type_weights

let generate ?(config = default_config) () : column list =
  let rng = Semtypes.Generators.make_rng config.seed in
  let pick = Semtypes.Generators.pick in
  let typed_total = config.n_columns / 3 in
  let counts = scale_counts typed_total in
  let header_for type_id =
    match Random.State.int rng 10 with
    | 0 | 1 -> None  (* missing *)
    | 2 | 3 -> Some (pick rng generic_headers)
    | _ ->
      (match List.assoc_opt type_id descriptive_headers with
       | Some hs -> Some (pick rng hs)
       | None -> Some (pick rng generic_headers))
  in
  let typed_column type_id =
    let ty = Semtypes.Registry.find_exn type_id in
    let gen = Option.get ty.Semtypes.Registry.generator in
    let values =
      List.init config.values_per_column (fun _ ->
          if Random.State.float rng 1.0 < config.dirty_fraction then
            Semtypes.Generators.wild_cell rng
          else gen rng)
    in
    { header = header_for type_id; values; truth = Some type_id;
      note = "typed" }
  in
  let typed =
    List.concat_map
      (fun (type_id, n) -> List.init n (fun _ -> typed_column type_id))
      counts
  in
  (* Ambiguity traps (Section 9.2 false-positive analysis). *)
  let version_column () =
    let values =
      List.init config.values_per_column (fun _ ->
          Printf.sprintf "%d.%d.%d.%d" (Random.State.int rng 12)
            (Random.State.int rng 90) (Random.State.int rng 10)
            (Random.State.int rng 10))
    in
    { header = Some "version number"; values; truth = None;
      note = "version-looks-like-ipv4" }
  in
  let range_column () =
    let values =
      List.init config.values_per_column (fun _ ->
          Printf.sprintf "%d-%d"
            (1 + Random.State.int rng 12)
            (1 + Random.State.int rng 28))
    in
    { header = Some "temperature range"; values; truth = None;
      note = "range-looks-like-date" }
  in
  (* Composite-value columns (false-negative analysis: 12% of misses). *)
  let composite_isbn () =
    let values =
      List.init config.values_per_column (fun _ ->
          "ISBN " ^ Semtypes.Generators.isbn13 rng)
    in
    { header = Some "book"; values; truth = Some "isbn";
      note = "composite-prefix" }
  in
  let composite_addr_phone () =
    let values =
      List.init config.values_per_column (fun _ ->
          Semtypes.Generators.mailing_address rng
          ^ ", "
          ^ Semtypes.Generators.phone_us rng)
    in
    { header = Some "contact"; values; truth = Some "address";
      note = "composite-address-phone" }
  in
  let partial_address () =
    let values =
      List.init config.values_per_column (fun _ ->
          Printf.sprintf "%d %s %s"
            (1 + Random.State.int rng 9999)
            (pick rng Semtypes.Generators.street_names)
            (pick rng [ "St"; "Ave"; "Rd" ]))
    in
    { header = Some "street"; values; truth = Some "address";
      note = "partial-address" }
  in
  (* Misleading headers: descriptive header words on untyped content —
     the dominant false-positive source for the KW baseline. *)
  let misleading_header_column () =
    let header =
      pick rng
        [ "date added"; "last update"; "release date"; "location";
          "contact"; "price range"; "zip file"; "ip camera model";
          "email list size"; "address book"; "card type"; "phone model" ]
    in
    let values =
      List.init config.values_per_column (fun _ ->
          Semtypes.Generators.wild_cell rng)
    in
    { header = Some header; values; truth = None; note = "misleading-header" }
  in
  (* All-5-digit identifier columns: genuinely ambiguous with zipcodes. *)
  let five_digit_ids () =
    let base = 10000 + Random.State.int rng 80000 in
    let values =
      List.init config.values_per_column (fun i -> string_of_int (base + i))
    in
    { header = Some "employee id"; values; truth = None;
      note = "ids-look-like-zip" }
  in
  let traps =
    List.init 16 (fun i ->
        match i mod 5 with
        | 0 -> version_column ()
        | 1 -> range_column ()
        | 2 -> composite_isbn ()
        | 3 -> composite_addr_phone ()
        | _ -> partial_address ())
    @ List.init 30 (fun _ -> misleading_header_column ())
    @ List.init 4 (fun _ -> five_digit_ids ())
  in
  (* Untyped long tail. *)
  let untyped_needed =
    max 0 (config.n_columns - List.length typed - List.length traps)
  in
  let untyped =
    List.init untyped_needed (fun _ ->
        let kind = Random.State.int rng 4 in
        (* Numeric columns mix magnitudes, as real measurement columns
           do — otherwise every 5-digit column looks like a zipcode. *)
        let base_width = 1 + Random.State.int rng 6 in
        let values =
          List.init config.values_per_column (fun _ ->
              match kind with
              | 0 ->
                let width = base_width + Random.State.int rng 3 in
                let lo = int_of_float (10.0 ** float_of_int (width - 1)) in
                string_of_int (lo + Random.State.int rng (max 1 (lo * 9)))
              | 1 -> Semtypes.Generators.lower_letters rng
                       (3 + Random.State.int rng 8)
              | 2 -> Semtypes.Generators.wild_cell rng
              | _ ->
                Semtypes.Generators.upper_letters rng 2
                ^ string_of_int (Random.State.int rng 999))
        in
        (* A sizable share of untyped columns carry descriptive-looking
           headers ("date", "price", "location") over content that is
           not of the corresponding type — the dominant KW
           false-positive source the paper reports (Section 9.2). *)
        let header =
          if Random.State.float rng 1.0 < 0.22 then begin
            (* Misleading headers follow the same frequency skew as
               typed columns: "date"-like headers are everywhere,
               "isbn" headers are rare. *)
            let total = List.fold_left (fun a (_, w) -> a + w) 0 type_weights in
            let roll = Random.State.int rng total in
            let rec pick_weighted acc = function
              | [] -> fst (List.hd type_weights)
              | (ty, w) :: rest ->
                if roll < acc + w then ty else pick_weighted (acc + w) rest
            in
            let ty = pick_weighted 0 type_weights in
            match List.assoc_opt ty descriptive_headers with
            | Some hs -> Some (pick rng hs)
            | None -> Some (pick rng generic_headers)
          end
          else Some (pick rng generic_headers)
        in
        { header; values; truth = None; note = "untyped" })
  in
  (* Deterministic shuffle. *)
  let all = Array.of_list (typed @ traps @ untyped) in
  let n = Array.length all in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = all.(i) in
    all.(i) <- all.(j);
    all.(j) <- tmp
  done;
  Array.to_list all
