(** Potter's-Wheel-style structure inference (Raman & Hellerstein,
    VLDB 2001) — the REGEX baseline of Section 9.1.

    Examples are abstracted into token sequences (digit runs, letter
    runs, punctuation literals); sequences unify across examples by
    widening run-length ranges; heterogeneous example sets (more than a
    few distinct shapes) make inference fail, reproducing the paper's
    finding for mixed-format inputs. *)

type token =
  | Digits of int * int  (** run of digits, length range *)
  | Letters of int * int
  | Alnum of int * int
  | Punct of char

type signature = token list

type t
(** An inferred pattern: a small disjunction of signatures. *)

val max_disjuncts : int

val tokenize : string -> signature

val unify : signature -> signature -> signature option

val infer : string list -> t option
(** [None] when the examples are too heterogeneous. *)

val matches : t -> string -> bool

val to_string : t -> string
