lib/tablecorpus/regex_infer.mli:
