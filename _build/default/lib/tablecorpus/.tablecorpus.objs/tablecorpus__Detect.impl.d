lib/tablecorpus/detect.ml: Autotype_core Corpus Eval Hashtbl List Option Regex_infer Semtypes String Webtables
