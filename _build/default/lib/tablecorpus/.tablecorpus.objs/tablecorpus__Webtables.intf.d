lib/tablecorpus/webtables.mli:
