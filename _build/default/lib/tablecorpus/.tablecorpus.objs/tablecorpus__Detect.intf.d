lib/tablecorpus/detect.mli: Eval Semtypes Webtables
