lib/tablecorpus/regex_infer.ml: List Option Printf String
