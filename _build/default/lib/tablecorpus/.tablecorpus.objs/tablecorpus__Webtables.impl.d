lib/tablecorpus/webtables.ml: Array List Option Printf Random Semtypes
