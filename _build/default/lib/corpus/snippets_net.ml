(** Hand-written "mined" repositories for network and technology types:
    IPv4 (several independent implementations, including the weak one the
    paper cites), IPv6, MAC, URL, email, MD5, GUID, MSISDN, NMEA. *)

let file = Corpus_util.file

let netaddr =
  Repolib.Repo.make "netkit/netaddr-lite"
    "IP address manipulation: parse, validate and classify IPv4/IPv6"
    ~readme:
      "A small library for parsing IP addresses. Supports IPv4 dotted \
       quads and IPv6 groups including :: compression."
    ~stars:510
    ~truth:
      [ ("parse_ipv4", [ "ipv4" ]);
        ("ipv4_to_int", [ "ipv4" ]);
        ("is_ipv6", [ "ipv6" ]) ]
    [
      file "netaddr/ipv4.py"
        {|def parse_ipv4(addr):
    parts = addr.split(".")
    if len(parts) != 4:
        raise ValueError("expected 4 octets")
    octets = []
    for p in parts:
        if not p.isdigit():
            raise ValueError("octet is not a number")
        if len(p) > 1 and p[0] == "0":
            raise ValueError("leading zero in octet")
        v = int(p)
        if v > 255:
            raise ValueError("octet out of range")
        octets.append(v)
    return octets

def ipv4_to_int(addr):
    octets = parse_ipv4(addr)
    value = 0
    for o in octets:
        value = value * 256 + o
    return value
|};
      file "netaddr/ipv6.py"
        {|def is_ipv6(addr):
    addr = addr.lower()
    if addr.count("::") > 1:
        return False
    if "::" in addr:
        dot = addr.find("::")
        left = addr[:dot]
        right = addr[dot + 2:]
        groups = []
        if left != "":
            groups = groups + left.split(":")
        if right != "":
            groups = groups + right.split(":")
        if len(groups) > 7:
            return False
    else:
        groups = addr.split(":")
        if len(groups) != 8:
            return False
    for g in groups:
        if len(g) < 1 or len(g) > 4:
            return False
        for ch in g:
            if ch not in "0123456789abcdef":
                return False
    return True
|};
    ]

let ip_regex_gist =
  Repolib.Repo.make "gist/ip-regex"
    "gist: regex to validate an IP address"
    ~stars:21
    ~truth:[ ("valid_ip", [ "ipv4" ]) ]
    [
      file "gist/ipregex.py"
        {|import re

IP_PATTERN = "^(25[0-5]|2[0-4][0-9]|1[0-9][0-9]|[1-9]?[0-9])(\.(25[0-5]|2[0-4][0-9]|1[0-9][0-9]|[1-9]?[0-9])){3}$"

def valid_ip(addr):
    if re.match(IP_PATTERN, addr):
        return True
    return False
|};
    ]

(* The weak IPv4 checker mentioned in Section 8.1: only digits separated
   by dots, no segment count or range validation. *)
let ip_sloppy =
  Repolib.Repo.make "homelab/server-scripts"
    "assorted scripts for my home server: ip checks, pings, backups"
    ~stars:3
    ~truth:[ ("is_ip", [ "ipv4" ]) ]
    [
      file "scripts/ipcheck.py"
        {|def is_ip(s):
    # quick and dirty
    for part in s.split("."):
        if not part.isdigit():
            return False
    return "." in s
|};
    ]

let whois_like =
  Repolib.Repo.make "netops/ip-intel"
    "IP intelligence: registration info and geolocation lookup for IPv4"
    ~readme:
      "Resolve an IPv4 address to its registry block, owner country and \
       city using an embedded snapshot of allocation data."
    ~stars:67
    ~truth:[ ("IpInfo.lookup", [ "ipv4" ]) ]
    [
      file "ipintel/lookup.py"
        {|BLOCKS = {8: "US", 9: "US", 13: "US", 17: "US", 24: "CA", 25: "GB",
          51: "GB", 53: "DE", 58: "CN", 59: "CN", 61: "AU", 77: "RU",
          80: "EU", 90: "FR", 101: "JP", 103: "SG", 110: "KR", 133: "JP",
          150: "BR", 163: "US", 177: "BR", 190: "AR", 196: "ZA", 200: "BR",
          202: "CN", 212: "EU", 213: "EU", 217: "EU"}

class IpInfo:
    def __init__(self):
        self.country = ""
        self.block = 0

    def lookup(self, addr):
        parts = addr.split(".")
        if len(parts) != 4:
            raise ValueError("not an IPv4 address")
        for p in parts:
            v = int(p)
            if v < 0 or v > 255:
                raise ValueError("octet out of range")
        self.block = int(parts[0])
        if self.block in BLOCKS:
            self.country = BLOCKS[self.block]
        else:
            self.country = "UNKNOWN"
        return self.country
|};
    ]

let macaddr =
  Repolib.Repo.make "netkit/macformat"
    "MAC address normalization: colon, dash and EUI-64 formats"
    ~stars:45
    ~truth:
      [ ("normalize_mac", [ "mac-address" ]);
        ("mac_to_eui64", [ "mac-address" ]) ]
    [
      file "macformat/mac.py"
        {|def normalize_mac(mac):
    mac = mac.lower().replace("-", ":")
    groups = mac.split(":")
    if len(groups) != 6:
        raise ValueError("expected 6 octets")
    out = []
    for g in groups:
        if len(g) != 2:
            raise ValueError("octet must be 2 hex digits")
        for ch in g:
            if ch not in "0123456789abcdef":
                raise ValueError("bad hex digit")
        out.append(g)
    return ":".join(out)

def mac_to_eui64(mac):
    mac = normalize_mac(mac)
    groups = mac.split(":")
    head = groups[:3]
    tail = groups[3:]
    eui = head + ["ff", "fe"] + tail
    return ":".join(eui)
|};
    ]

let urltools =
  Repolib.Repo.make "webkit/urltools"
    "URL parsing: scheme, host, port, path and query extraction"
    ~readme:"Split URLs into components; validate scheme and hostname."
    ~stars:389
    ~truth:
      [ ("urlparse", [ "url" ]); ("hostname_of", [ "url" ]) ]
    [
      file "urltools/parse.py"
        {|SCHEMES = ["http", "https", "ftp"]

def urlparse(url):
    sep = url.find("://")
    if sep < 0:
        raise ValueError("missing scheme")
    scheme = url[:sep].lower()
    if scheme not in SCHEMES:
        raise ValueError("unsupported scheme")
    rest = url[sep + 3:]
    path = ""
    slash = rest.find("/")
    if slash >= 0:
        path = rest[slash:]
        rest = rest[:slash]
    port = ""
    colon = rest.find(":")
    if colon >= 0:
        port = rest[colon + 1:]
        if not port.isdigit():
            raise ValueError("bad port")
        rest = rest[:colon]
    host = rest
    if host == "":
        raise ValueError("empty host")
    if "." not in host:
        raise ValueError("host must contain a dot")
    for ch in host:
        if not ch.isalnum() and ch != "." and ch != "-":
            raise ValueError("bad host character")
    return {"scheme": scheme, "host": host, "port": port, "path": path}

def hostname_of(url):
    parts = urlparse(url)
    return parts["host"]
|};
    ]

let email_lib =
  Repolib.Repo.make "mailkit/email-verify"
    "Email address verification: syntax and domain checks"
    ~stars:267
    ~truth:
      [ ("verify_email", [ "email" ]); ("email_domain", [ "email" ]) ]
    [
      file "emailverify/check.py"
        {|def verify_email(address):
    at = address.find("@")
    if at <= 0:
        return False
    local = address[:at]
    domain = address[at + 1:]
    if "@" in domain:
        return False
    for ch in local:
        if not ch.isalnum() and ch not in "._%+-":
            return False
    if "." not in domain:
        return False
    if domain[0] == "." or domain[len(domain) - 1] == ".":
        return False
    labels = domain.split(".")
    for label in labels:
        if label == "":
            return False
        for ch in label:
            if not ch.isalnum() and ch != "-":
                return False
    tld = labels[len(labels) - 1]
    if len(tld) < 2:
        return False
    if not tld.isalpha():
        return False
    return True

def email_domain(address):
    if not verify_email(address):
        raise ValueError("not an email address")
    at = address.find("@")
    return address[at + 1:]
|};
    ]

let email_regex_gist =
  Repolib.Repo.make "gist/email-regex-check"
    "gist: simple email validation with a regular expression"
    ~stars:30
    ~truth:[ ("<script:gist/email_check.py#address>", [ "email" ]) ]
    [
      file "gist/email_check.py"
        {|import re

address = "someone@example.com"
pattern = "^[a-zA-Z0-9._%+-]+@[a-zA-Z0-9.-]+\.[a-zA-Z]{2,}$"
if re.match(pattern, address):
    print("ok")
else:
    print("bad email")
|};
    ]

let hash_tools =
  Repolib.Repo.make "sectools/hash-identify"
    "Identify hash types: MD5, SHA1, SHA256 by format"
    ~stars:59
    ~truth:[ ("looks_like_md5", [ "md5" ]) ]
    [
      file "hashid/md5.py"
        {|def looks_like_md5(h):
    h = h.strip().lower()
    if len(h) != 32:
        return False
    for ch in h:
        if ch not in "0123456789abcdef":
            return False
    return True
|};
    ]

let uuid_lib =
  Repolib.Repo.make "idgen/uuid-utils"
    "GUID/UUID parsing and version extraction"
    ~stars:142
    ~truth:
      [ ("parse_guid", [ "guid" ]); ("uuid_version", [ "guid" ]) ]
    [
      file "uuidutils/parse.py"
        {|def parse_guid(guid):
    guid = guid.strip().lower()
    parts = guid.split("-")
    if len(parts) != 5:
        raise ValueError("expected 5 groups")
    expected = [8, 4, 4, 4, 12]
    i = 0
    while i < 5:
        if len(parts[i]) != expected[i]:
            raise ValueError("bad group length")
        for ch in parts[i]:
            if ch not in "0123456789abcdef":
                raise ValueError("bad hex digit")
        i = i + 1
    return parts

def uuid_version(guid):
    parts = parse_guid(guid)
    version = parts[2][0]
    return int(version, 16)
|};
    ]

let phone_intl =
  Repolib.Repo.make "telco/msisdn-check"
    "MSISDN international mobile number validation (E.164)"
    ~stars:38
    ~truth:[ ("check_msisdn", [ "msisdn" ]) ]
    [
      file "msisdn/check.py"
        {|def check_msisdn(number):
    number = number.strip()
    if number[0] == "+":
        number = number[1:]
    if len(number) < 10 or len(number) > 15:
        return False
    if not number.isdigit():
        return False
    if number[0] == "0":
        return False
    return True
|};
    ]

let nmea_parse =
  Repolib.Repo.make "marine/nmea-parser"
    "NMEA 0183 sentence parsing with XOR checksum verification"
    ~stars:85
    ~truth:[ ("verify_sentence", [ "nmea0183" ]) ]
    [
      file "nmea/verify.py"
        {|HEX = "0123456789ABCDEF"

def verify_sentence(line):
    line = line.strip()
    if line[0] != "$":
        return False
    star = line.find("*")
    if star < 0:
        return False
    if len(line) != star + 3:
        return False
    checksum = 0
    for ch in line[1:star]:
        checksum = checksum ^ ord(ch)
    hi = HEX[checksum // 16]
    lo = HEX[checksum % 16]
    given = line[star + 1:].upper()
    return given == hi + lo
|};
    ]

let repos =
  [
    netaddr; ip_regex_gist; ip_sloppy; whois_like; macaddr; urltools;
    email_lib; email_regex_gist; hash_tools; uuid_lib; phone_intl; nmea_parse;
  ]
