(** Hand-written "mined" repositories for science and health types. *)

let file = Corpus_util.file

let chemtools =
  Repolib.Repo.make "chemlab/chemtools"
    "Chemistry utilities: molecular formulas, CAS numbers, SMILES, InChI"
    ~readme:
      "Parse molecular formulas into element counts and compute average \
       mass; validate CAS registry numbers; structural checks for SMILES \
       strings and InChI identifiers."
    ~stars:298
    ~truth:
      [ ("parse_formula", [ "chemical-formula" ]);
        ("molar_mass", [ "chemical-formula" ]);
        ("valid_cas", [ "cas-number" ]);
        ("check_smiles", [ "smile" ]);
        ("is_inchi", [ "inchi" ]) ]
    [
      file "chemtools/formula.py"
        {|MASSES = {"H": 1, "He": 4, "Li": 7, "Be": 9, "B": 11, "C": 12, "N": 14,
          "O": 16, "F": 19, "Ne": 20, "Na": 23, "Mg": 24, "Al": 27,
          "Si": 28, "P": 31, "S": 32, "Cl": 35, "Ar": 40, "K": 39,
          "Ca": 40, "Fe": 56, "Cu": 64, "Zn": 65, "Br": 80, "Ag": 108,
          "I": 127, "Au": 197, "Hg": 201, "Pb": 207, "Sn": 119, "Mn": 55,
          "Cr": 52, "Ni": 59, "Co": 59, "Ti": 48}

def parse_formula(formula):
    counts = {}
    i = 0
    n = len(formula)
    while i < n:
        ch = formula[i]
        if not ch.isupper():
            raise ValueError("expected element symbol")
        symbol = ch
        if i + 1 < n and formula[i + 1].islower():
            symbol = formula[i:i + 2]
            i = i + 2
        else:
            i = i + 1
        if symbol not in MASSES:
            raise ValueError("unknown element")
        count = 0
        while i < n and formula[i].isdigit():
            count = count * 10 + ord(formula[i]) - 48
            i = i + 1
        if count == 0:
            count = 1
        if symbol in counts:
            counts[symbol] = counts[symbol] + count
        else:
            counts[symbol] = count
    if len(counts) == 0:
        raise ValueError("empty formula")
    return counts

def molar_mass(formula):
    counts = parse_formula(formula)
    total = 0
    for symbol in counts.keys():
        total = total + MASSES[symbol] * counts[symbol]
    return total
|};
      file "chemtools/cas.py"
        {|def valid_cas(cas):
    parts = cas.split("-")
    if len(parts) != 3:
        return False
    a = parts[0]
    b = parts[1]
    c = parts[2]
    if len(a) < 2 or len(a) > 7 or len(b) != 2 or len(c) != 1:
        return False
    if not a.isdigit() or not b.isdigit() or not c.isdigit():
        return False
    digits = a + b
    total = 0
    i = 0
    n = len(digits)
    while i < n:
        total = total + (n - i) * (ord(digits[i]) - 48)
        i = i + 1
    return total % 10 == int(c)
|};
      file "chemtools/smiles.py"
        {|SMILES_CHARS = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789()[]=#+-@/\\%."

def check_smiles(s):
    if len(s) == 0:
        return False
    depth = 0
    letters = 0
    for ch in s:
        if ch not in SMILES_CHARS:
            return False
        if ch.isalpha():
            letters = letters + 1
        if ch == "(":
            depth = depth + 1
        elif ch == ")":
            depth = depth - 1
            if depth < 0:
                return False
    if letters == 0:
        return False
    return depth == 0
|};
      file "chemtools/inchi.py"
        {|def is_inchi(s):
    if len(s) < 10:
        return False
    if s[:9] != "InChI=1S/":
        return False
    body = s[9:]
    if body == "":
        return False
    return True
|};
    ]

let bioseq =
  Repolib.Repo.make "biokit/seqparse"
    "Sequence file parsing: FASTA and FASTQ readers"
    ~readme:
      "Read FASTA and FASTQ records, validating nucleotide alphabets and \
       quality string lengths as they are parsed."
    ~stars:367
    ~truth:
      [ ("read_fasta", [ "fasta" ]);
        ("read_fastq", [ "fastq" ]);
        ("gc_content", [ "fasta" ]) ]
    [
      file "seqparse/fasta.py"
        {|NUCLEOTIDES = "ACGTUNacgtun-*"

def read_fasta(text):
    lines = text.split("\n")
    if len(lines) < 2:
        raise ValueError("need header and sequence")
    header = lines[0]
    if len(header) == 0 or header[0] != ">":
        raise ValueError("FASTA header must start with >")
    sequence = ""
    for line in lines[1:]:
        for ch in line:
            if ch not in NUCLEOTIDES:
                raise ValueError("bad nucleotide code")
        sequence = sequence + line
    if sequence == "":
        raise ValueError("empty sequence")
    return {"id": header[1:], "seq": sequence}

def gc_content(text):
    record = read_fasta(text)
    seq = record["seq"].upper()
    gc = 0
    for ch in seq:
        if ch == "G" or ch == "C":
            gc = gc + 1
    return gc * 100 // len(seq)
|};
      file "seqparse/fastq.py"
        {|def read_fastq(text):
    lines = text.split("\n")
    if len(lines) != 4:
        raise ValueError("FASTQ records have 4 lines")
    if lines[0] == "" or lines[0][0] != "@":
        raise ValueError("header must start with @")
    if lines[2] == "" or lines[2][0] != "+":
        raise ValueError("separator must start with +")
    seq = lines[1]
    qual = lines[3]
    for ch in seq:
        if ch not in "ACGTN":
            raise ValueError("bad base")
    if len(seq) != len(qual):
        raise ValueError("quality length mismatch")
    return {"id": lines[0][1:], "seq": seq, "qual": qual}
|};
    ]

let bio_ids =
  Repolib.Repo.make "biokit/bio-identifiers"
    "Biological database identifiers: UniProt, Ensembl, LSID, SNP rs IDs"
    ~stars:104
    ~truth:
      [ ("check_uniprot", [ "uniprot" ]);
        ("check_ensembl_gene", [ "ensembl-gene" ]);
        ("check_lsid", [ "lsid" ]);
        ("check_rsid", [ "snpid" ]) ]
    [
      file "bioids/ids.py"
        {|import re

def check_uniprot(acc):
    if len(acc) != 6 and len(acc) != 10:
        return False
    if not acc[0].isupper():
        return False
    if not acc[1].isdigit():
        return False
    for ch in acc:
        if not ch.isupper() and not ch.isdigit():
            return False
    return acc[len(acc) - 1].isdigit()

def check_ensembl_gene(gid):
    if len(gid) != 15:
        return False
    if gid[:4] != "ENSG":
        return False
    return gid[4:].isdigit()

def check_lsid(lsid):
    lsid = lsid.lower()
    if lsid[:9] != "urn:lsid:":
        return False
    parts = lsid.split(":")
    return len(parts) >= 5

def check_rsid(rsid):
    if re.match("^rs[0-9]{3,9}$", rsid):
        return True
    return False
|};
    ]

let medcodes =
  Repolib.Repo.make "healthdata/medical-codes"
    "Medical coding: ICD-9, ICD-10, HCPCS, NDC drug codes, DEA numbers"
    ~readme:
      "Validators for the code systems used in US claims data: diagnosis \
       codes (ICD-9/ICD-10), procedure codes (HCPCS), national drug \
       codes (NDC) and prescriber DEA numbers."
    ~stars:187
    ~truth:
      [ ("valid_icd9", [ "icd9" ]);
        ("valid_icd10", [ "icd10" ]);
        ("valid_hcpcs", [ "hcpcs" ]);
        ("valid_ndc", [ "fda-ndc" ]);
        ("check_dea", [ "dea-number" ]) ]
    [
      file "medcodes/icd.py"
        {|def valid_icd9(code):
    body = code
    rest = ""
    if "." in code:
        dot = code.find(".")
        body = code[:dot]
        rest = code[dot + 1:]
        if len(rest) < 1 or len(rest) > 2 or not rest.isdigit():
            return False
    if len(body) == 3 and body.isdigit():
        return True
    if len(body) == 4 and body[0] == "E" and body[1:].isdigit():
        return True
    if len(body) == 3 and body[0] == "V" and body[1:].isdigit():
        return True
    return False

def valid_icd10(code):
    body = code
    rest = ""
    if "." in code:
        dot = code.find(".")
        body = code[:dot]
        rest = code[dot + 1:]
        if len(rest) < 1 or len(rest) > 4 or not rest.isalnum():
            return False
    if len(body) != 3:
        return False
    if not body[0].isupper():
        return False
    return body[1:].isdigit()
|};
      file "medcodes/hcpcs.py"
        {|def valid_hcpcs(code):
    if len(code) != 5:
        return False
    if not code[0].isupper():
        return False
    return code[1:].isdigit()

def valid_ndc(code):
    parts = code.split("-")
    if len(parts) != 3:
        return False
    if len(parts[0]) != 5 or len(parts[1]) != 4 or len(parts[2]) != 2:
        return False
    return parts[0].isdigit() and parts[1].isdigit() and parts[2].isdigit()
|};
      file "medcodes/dea.py"
        {|def check_dea(number):
    if len(number) != 9:
        return False
    if not number[0].isupper():
        return False
    if not number[1].isupper() and number[1] != "9":
        return False
    digits = number[2:]
    if not digits.isdigit():
        return False
    odd = int(digits[0]) + int(digits[2]) + int(digits[4])
    even = int(digits[1]) + int(digits[3]) + int(digits[5])
    total = odd + 2 * even
    return total % 10 == int(digits[6])
|};
    ]

let pharmacy =
  Repolib.Repo.make "healthdata/drug-directory"
    "Drug name directory with therapeutic classes and ATC codes"
    ~stars:66
    ~truth:
      [ ("drug_class", [ "drug-name" ]); ("valid_atc", [ "atc-code" ]) ]
    [
      file "drugs/directory.py"
        {|DRUGS = {"Aspirin": "analgesic", "Ibuprofen": "NSAID",
         "Acetaminophen": "analgesic", "Amoxicillin": "antibiotic",
         "Lisinopril": "ACE inhibitor", "Metformin": "antidiabetic",
         "Atorvastatin": "statin", "Omeprazole": "PPI",
         "Amlodipine": "calcium blocker", "Metoprolol": "beta blocker",
         "Simvastatin": "statin", "Losartan": "ARB",
         "Gabapentin": "anticonvulsant", "Sertraline": "SSRI",
         "Furosemide": "diuretic", "Prednisone": "corticosteroid",
         "Tramadol": "opioid", "Citalopram": "SSRI",
         "Warfarin": "anticoagulant", "Insulin": "hormone",
         "Azithromycin": "antibiotic", "Hydrochlorothiazide": "diuretic",
         "Levothyroxine": "hormone", "Alprazolam": "benzodiazepine",
         "Ciprofloxacin": "antibiotic", "Doxycycline": "antibiotic",
         "Naproxen": "NSAID", "Pantoprazole": "PPI"}

def drug_class(name):
    name = name.strip()
    if name not in DRUGS:
        raise KeyError("not in directory")
    return DRUGS[name]

def valid_atc(code):
    if len(code) != 7:
        return False
    if not code[0].isupper():
        return False
    if not code[1:3].isdigit():
        return False
    if not code[3].isupper() or not code[4].isupper():
        return False
    return code[5:].isdigit()
|};
    ]

let pubchem_gist =
  Repolib.Repo.make "gist/pubchem-cid"
    "gist: check pubchem compound identifiers"
    ~stars:3
    ~truth:[ ("check_cid", [ "pubchem" ]) ]
    [
      file "gist/cid.py"
        {|def check_cid(cid):
    cid = cid.strip()
    if cid[:4] == "CID:":
        cid = cid[4:]
    if not cid.isdigit():
        return False
    if len(cid) < 2 or len(cid) > 9:
        return False
    return True
|};
    ]

let repos = [ chemtools; bioseq; bio_ids; medcodes; pharmacy; pubchem_gist ]
