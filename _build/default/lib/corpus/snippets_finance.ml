(** Hand-written "mined" repositories for financial data types.

    These mirror the kind of code AutoType finds on GitHub: validators,
    parsers that build internal representations (implicitly validating),
    converters, class-based card readers, and Gist-style scripts with
    hard-coded inputs.  Some are deliberately imperfect, reproducing the
    false-positive sources of Section 9.2 (e.g. a UPC checksum that
    skips the length check). *)

let file = Corpus_util.file

(* ------------------------------------------------------------------ *)
(* Credit cards                                                        *)
(* ------------------------------------------------------------------ *)

let cardcheck =
  Repolib.Repo.make "mpaz/cardcheck"
    "Credit card number validation with Luhn checksum and brand detection"
    ~readme:
      "cardcheck validates credit card numbers using the Luhn algorithm \
       and detects the card brand (Visa, Mastercard, Amex, Discover)."
    ~stars:412
    ~truth:
      [ ("luhn_checksum", [ "credit-card" ]);
        ("is_valid_card", [ "credit-card" ]);
        ("card_brand", [ "credit-card" ]) ]
    [
      file "cardcheck/luhn.py"
        {|# Luhn mod-10 checksum used by payment card numbers.
def luhn_checksum(number):
    total = 0
    parity = len(number) % 2
    i = 0
    while i < len(number):
        d = ord(number[i]) - 48
        if d < 0 or d > 9:
            raise ValueError
        if i % 2 == parity:
            d = d * 2
            if d > 9:
                d = d - 9
        total = total + d
        i = i + 1
    return total % 10

def is_valid_card(number):
    number = number.replace(" ", "")
    number = number.replace("-", "")
    n = len(number)
    if n < 13 or n > 19:
        return False
    if luhn_checksum(number) != 0:
        return False
    return True
|};
      file "cardcheck/brand.py"
        {|# Detect the issuing brand from the IIN prefix.
def card_brand(number):
    number = number.replace(" ", "")
    if not number.isdigit():
        raise ValueError("card number must be digits")
    prefix2 = int(number[:2])
    brand = None
    if number[0] == "4":
        brand = "Visa"
    elif prefix2 >= 51 and prefix2 <= 55:
        brand = "Mastercard"
    elif prefix2 == 34 or prefix2 == 37:
        brand = "Amex"
    elif number[:4] == "6011":
        brand = "Discover"
    if brand is None:
        raise ValueError("unknown issuer")
    return brand
|};
    ]

let py_payments =
  Repolib.Repo.make "finlib/py-payments"
    "Payment processing helpers: credit card parsing and masking"
    ~readme:
      "Parse credit card numbers into issuer, bank and account parts. \
       Includes a CreditCard class for use in checkout flows."
    ~stars:178
    ~truth:
      [ ("CreditCard.read_from_number", [ "credit-card" ]);
        ("mask_card", [ "credit-card" ]) ]
    [
      file "pypayments/card.py"
        {|class CreditCard:
    def __init__(self):
        self.card_brand = ""
        self.issuer_bank = ""
        self.cardnumber = ""

    def read_from_number(self, s):
        # Mirrors the paper's Listing 1: no raises after the prefix
        # parse; invalid numbers simply take different branches and the
        # object is returned either way.
        s = s.replace(" ", "").replace("-", "")
        num = int(s[:4])
        # Visa starts with 4
        if num // 1000 == 4:
            self.card_brand = "Visa"
        elif num // 100 >= 50 and num // 100 <= 55:
            self.card_brand = "Mastercard"
        elif num // 100 == 34 or num // 100 == 37:
            self.card_brand = "Amex"
        elif num == 6011:
            self.card_brand = "Discover"
        self.issuer_bank = s[:6]
        # next, validate the credit-card checksum
        temp_sum = 0
        alt = False
        i = len(s) - 1
        while i >= 0:
            d = ord(s[i]) - 48
            if d >= 0 and d <= 9:
                if alt:
                    d = d * 2
                    if d > 9:
                        d = d - 9
                temp_sum = temp_sum + d
            else:
                temp_sum = temp_sum + 1
            alt = not alt
            i = i - 1
        if temp_sum % 10 == 0:
            self.cardnumber = s
        return self

def mask_card(s):
    s = s.replace(" ", "")
    if len(s) < 13:
        raise ValueError("too short")
    if not s.isdigit():
        raise ValueError("not digits")
    return "****" + s[len(s) - 4:]
|};
    ]

let luhn_gist =
  Repolib.Repo.make "gist/ajk-luhn-snippet"
    "gist: quick luhn check for a card number"
    ~readme:"A little script I use to sanity check credit card numbers."
    ~stars:9
    ~truth:[ ("<script:gist/luhn_check.py#card_number>", [ "credit-card" ]) ]
    [
      file "gist/luhn_check.py"
        {|card_number = "4111111111111111"
digits = card_number.replace(" ", "")
total = 0
flip = False
i = len(digits) - 1
while i >= 0:
    d = int(digits[i])
    if flip:
        d = d * 2
        if d > 9:
            d = d - 9
    total = total + d
    flip = not flip
    i = i - 1
if total % 10 == 0:
    print("VALID")
else:
    print("INVALID: luhn checksum mismatch")
|};
    ]

(* Trifacta-style naive prefix matcher: intends credit cards but never
   validates the checksum (a weaker, regex-like implementation). *)
let naive_card =
  Repolib.Repo.make "webforms/input-validators"
    "Form field validators for sign-up pages: cards, phones, zips"
    ~stars:55
    ~truth:
      [ ("looks_like_card", [ "credit-card" ]);
        ("validate_zip_field", [ "us-zipcode" ]) ]
    [
      file "validators/fields.py"
        {|import re

def looks_like_card(value):
    value = value.replace(" ", "")
    # NOTE: prefix + length only, no checksum (fast path for UI hints)
    if re.match("^4[0-9]{15}$", value):
        return True
    if re.match("^5[1-5][0-9]{14}$", value):
        return True
    if re.match("^3[47][0-9]{13}$", value):
        return True
    if re.match("^6011[0-9]{12}$", value):
        return True
    return False

def validate_zip_field(value):
    if re.match("^[0-9]{5}$", value):
        return True
    if re.match("^[0-9]{5}-[0-9]{4}$", value):
        return True
    return False
|};
    ]

(* ------------------------------------------------------------------ *)
(* IBAN                                                                *)
(* ------------------------------------------------------------------ *)

let iban_tools =
  Repolib.Repo.make "bankkit/iban-tools"
    "IBAN parsing and validation (ISO 13616), mod-97 check"
    ~readme:
      "Validate International Bank Account Numbers and extract the \
       country code, check digits and BBAN."
    ~stars:231
    ~truth:
      [ ("validate_iban", [ "iban" ]); ("IbanParser.parse", [ "iban" ]) ]
    [
      file "ibantools/validate.py"
        {|IBAN_LENGTHS = {"DE": 22, "GB": 22, "FR": 27, "ES": 24, "IT": 27,
                "NL": 18, "BE": 16, "CH": 21, "AT": 20, "PT": 25,
                "SE": 24, "NO": 15, "DK": 18, "FI": 18, "PL": 28,
                "IE": 22, "LU": 20}

def char_value(c):
    if c.isdigit():
        return ord(c) - 48
    return ord(c) - 55

def validate_iban(iban):
    iban = iban.replace(" ", "").upper()
    if len(iban) < 15:
        return False
    country = iban[:2]
    if country not in IBAN_LENGTHS:
        return False
    if IBAN_LENGTHS[country] != len(iban):
        return False
    rearranged = iban[4:] + iban[:4]
    remainder = 0
    for ch in rearranged:
        v = char_value(ch)
        if v < 0 or v > 35:
            return False
        if v >= 10:
            remainder = (remainder * 100 + v) % 97
        else:
            remainder = (remainder * 10 + v) % 97
    return remainder == 1
|};
      file "ibantools/parser.py"
        {|class IbanParser:
    def __init__(self):
        self.country = ""
        self.check_digits = ""
        self.bban = ""

    def parse(self, iban):
        iban = iban.replace(" ", "").upper()
        if len(iban) < 15 or len(iban) > 34:
            raise ValueError("bad IBAN length")
        for ch in iban:
            if not ch.isalnum():
                raise ValueError("bad IBAN character")
        self.country = iban[:2]
        if not self.country.isalpha():
            raise ValueError("country code must be letters")
        self.check_digits = iban[2:4]
        if not self.check_digits.isdigit():
            raise ValueError("check digits must be numeric")
        self.bban = iban[4:]
        # mod 97 verification
        moved = self.bban + self.country + self.check_digits
        rem = 0
        for ch in moved:
            if ch.isdigit():
                rem = (rem * 10 + ord(ch) - 48) % 97
            else:
                rem = (rem * 100 + ord(ch) - 55) % 97
        if rem != 1:
            raise ValueError("IBAN checksum failed")
        return self
|};
    ]

(* ------------------------------------------------------------------ *)
(* ISIN / CUSIP / SEDOL / ABA: securities identifiers                  *)
(* ------------------------------------------------------------------ *)

let securities =
  Repolib.Repo.make "quantdesk/securities-ids"
    "Identifiers for securities: ISIN, CUSIP, SEDOL validation"
    ~readme:
      "Validation routines for international securities identification \
       numbers (ISIN), CUSIP and SEDOL codes, with their checksums."
    ~stars:146
    ~truth:
      [ ("is_valid_isin", [ "isin" ]);
        ("check_cusip", [ "cusip" ]);
        ("check_sedol", [ "sedol" ]) ]
    [
      file "secids/isin.py"
        {|def is_valid_isin(isin):
    if len(isin) != 12:
        return False
    country = isin[:2]
    if not country.isalpha():
        return False
    if not country.isupper():
        return False
    if not isin[11].isdigit():
        return False
    # expand letters to two-digit values, then run Luhn
    expanded = ""
    for ch in isin:
        if ch.isdigit():
            expanded = expanded + ch
        elif ch.isupper():
            expanded = expanded + str(ord(ch) - 55)
        else:
            return False
    total = 0
    flip = False
    i = len(expanded) - 1
    while i >= 0:
        d = int(expanded[i])
        if flip:
            d = d * 2
            if d > 9:
                d = d - 9
        total = total + d
        flip = not flip
        i = i - 1
    return total % 10 == 0
|};
      file "secids/cusip.py"
        {|def cusip_char(c):
    if c.isdigit():
        return ord(c) - 48
    if c.isupper():
        return ord(c) - 55
    if c == "*":
        return 36
    if c == "@":
        return 37
    if c == "#":
        return 38
    return -1

def check_cusip(cusip):
    if len(cusip) != 9:
        return False
    total = 0
    i = 0
    while i < 8:
        v = cusip_char(cusip[i])
        if v < 0:
            return False
        if i % 2 == 1:
            v = v * 2
        total = total + v // 10 + v % 10
        i = i + 1
    if not cusip[8].isdigit():
        return False
    return (10 - total % 10) % 10 == int(cusip[8])
|};
      file "secids/sedol.py"
        {|SEDOL_WEIGHTS = [1, 3, 1, 7, 3, 9, 1]

def check_sedol(sedol):
    if len(sedol) != 7:
        return False
    total = 0
    i = 0
    while i < 7:
        c = sedol[i]
        if c.isdigit():
            v = ord(c) - 48
        elif c.isupper():
            if c in "AEIOU":
                return False
            v = ord(c) - 55
        else:
            return False
        total = total + v * SEDOL_WEIGHTS[i]
        i = i + 1
    return total % 10 == 0
|};
    ]

let bankutils =
  Repolib.Repo.make "usbanking/routing-check"
    "ABA routing transit number utilities for US banks"
    ~stars:77
    ~truth:
      [ ("valid_routing_number", [ "aba-routing" ]);
        ("routing_district", [ "aba-routing" ]) ]
    [
      file "routing/aba.py"
        {|def valid_routing_number(rtn):
    if len(rtn) != 9:
        return False
    if not rtn.isdigit():
        return False
    weights = [3, 7, 1, 3, 7, 1, 3, 7, 1]
    total = 0
    i = 0
    while i < 9:
        total = total + weights[i] * (ord(rtn[i]) - 48)
        i = i + 1
    return total % 10 == 0

def routing_district(rtn):
    if not valid_routing_number(rtn):
        raise ValueError("invalid routing number")
    district = int(rtn[:2])
    if district <= 12:
        kind = "Federal Reserve Bank"
    elif district <= 32:
        kind = "Thrift institution"
    elif district <= 72:
        kind = "Electronic transaction"
    else:
        kind = "Traveler's cheque"
    return kind
|};
    ]

(* ------------------------------------------------------------------ *)
(* Barcodes: EAN / UPC / GTIN                                          *)
(* ------------------------------------------------------------------ *)

let barcode_lib =
  Repolib.Repo.make "retailtech/barcodes"
    "Barcode checksum library: EAN-13, EAN-8, UPC-A, GTIN-14"
    ~readme:
      "GS1 mod-10 check digit computation and validation for all common \
       retail barcode symbologies."
    ~stars:324
    ~truth:
      [ ("gs1_check_digit", [ "ean"; "upc"; "gtin"; "gln" ]);
        ("validate_ean13", [ "ean" ]);
        ("validate_upc", [ "upc" ]);
        ("validate_gtin", [ "gtin" ]) ]
    [
      file "barcodes/gs1.py"
        {|def gs1_check_digit(body):
    total = 0
    weight = 3
    i = len(body) - 1
    while i >= 0:
        d = ord(body[i]) - 48
        if d < 0 or d > 9:
            raise ValueError("barcode must be numeric")
        total = total + d * weight
        if weight == 3:
            weight = 1
        else:
            weight = 3
        i = i - 1
    return (10 - total % 10) % 10

def validate_ean13(code):
    if len(code) != 13:
        return False
    if not code.isdigit():
        return False
    return gs1_check_digit(code[:12]) == int(code[12])

def validate_upc(code):
    if len(code) != 12:
        return False
    if not code.isdigit():
        return False
    return gs1_check_digit(code[:11]) == int(code[11])

def validate_gtin(code):
    if len(code) != 14:
        return False
    if not code.isdigit():
        return False
    return gs1_check_digit(code[:13]) == int(code[13])
|};
    ]

(* The imperfect UPC validator of Section 9.2: checksum without a length
   check, so ISBN-13 columns also pass (same GS1 algorithm). *)
let upc_quick =
  Repolib.Repo.make "gist/upc-quick-check"
    "gist: UPC barcode check digit verify"
    ~stars:4
    ~truth:[ ("upc_ok", [ "upc" ]) ]
    [
      file "gist/upc_quick.py"
        {|def upc_ok(code):
    # checksum only -- assumes caller already knows it is a UPC
    code = code.strip()
    total = 0
    weight = 3
    i = len(code) - 2
    while i >= 0:
        total = total + (ord(code[i]) - 48) * weight
        if weight == 3:
            weight = 1
        else:
            weight = 3
        i = i - 1
    check = (10 - total % 10) % 10
    last = ord(code[len(code) - 1]) - 48
    if last < 0 or last > 9:
        raise ValueError
    return check == last
|};
    ]

(* ------------------------------------------------------------------ *)
(* Currency, tickers, SWIFT, bitcoin                                   *)
(* ------------------------------------------------------------------ *)

let moneyfmt =
  Repolib.Repo.make "fintools/moneyfmt"
    "Parse and format currency amounts: $1,234.56, EUR 12.00"
    ~stars:88
    ~truth:
      [ ("parse_amount", [ "currency" ]); ("currency_of", [ "currency" ]) ]
    [
      file "moneyfmt/parse.py"
        {|SYMBOLS = {"$": "USD"}
CODES = ["USD", "EUR", "GBP", "JPY", "CHF", "CAD", "AUD", "CNY"]

def currency_of(text):
    text = text.strip()
    if text[0] == "$":
        return "USD"
    head = text[:3]
    if head in CODES:
        return head
    tail = text[len(text) - 3:]
    if tail in CODES:
        return tail
    raise ValueError("no currency marker")

def parse_amount(text):
    text = text.strip()
    code = currency_of(text)
    digits = ""
    seen_dot = 0
    for ch in text:
        if ch.isdigit():
            digits = digits + ch
        elif ch == ".":
            seen_dot = seen_dot + 1
            digits = digits + ch
        elif ch == ",":
            pass
        elif ch.isalpha() or ch == "$" or ch == " ":
            pass
        else:
            raise ValueError("bad character in amount")
    if seen_dot > 1:
        raise ValueError("too many decimal points")
    if len(digits) == 0:
        raise ValueError("no digits")
    value = float(digits)
    return [code, value]
|};
    ]

let tickerdb =
  Repolib.Repo.make "marketdata/tickerdb"
    "Stock ticker symbol lookup with company names and exchange info"
    ~stars:134
    ~truth:
      [ ("lookup_ticker", [ "stock-ticker" ]);
        ("is_ticker_format", [ "stock-ticker" ]) ]
    [
      file "tickerdb/lookup.py"
        {|KNOWN = {"AAPL": "Apple Inc", "MSFT": "Microsoft", "GOOG": "Alphabet",
         "AMZN": "Amazon", "TSLA": "Tesla", "IBM": "IBM", "GE": "General Electric",
         "F": "Ford", "T": "AT&T", "KO": "Coca-Cola", "JPM": "JPMorgan",
         "BAC": "Bank of America", "WMT": "Walmart", "XOM": "Exxon",
         "CVX": "Chevron", "PFE": "Pfizer", "MRK": "Merck", "INTC": "Intel",
         "CSCO": "Cisco", "ORCL": "Oracle", "NKE": "Nike", "DIS": "Disney",
         "V": "Visa", "MA": "Mastercard", "BRK.A": "Berkshire", "BRK.B": "Berkshire"}

def lookup_ticker(symbol):
    symbol = symbol.strip()
    if symbol not in KNOWN:
        raise KeyError("unknown ticker")
    company = KNOWN[symbol]
    return company

def is_ticker_format(symbol):
    base = symbol
    if "." in symbol:
        dot = symbol.find(".")
        base = symbol[:dot]
        suffix = symbol[dot + 1:]
        if len(suffix) != 1:
            return False
        if not suffix.isupper():
            return False
    if len(base) < 1 or len(base) > 5:
        return False
    if not base.isalpha():
        return False
    if not base.isupper():
        return False
    return True
|};
    ]

let swift_bic =
  Repolib.Repo.make "payments-eu/swift-bic"
    "SWIFT BIC code validation for international payment messages"
    ~readme:
      "Validate SWIFT/BIC codes (ISO 9362) used to route interbank \
       messages: bank code, country, location and branch."
    ~stars:96
    ~truth:[ ("parse_bic", [ "swift-code" ]) ]
    [
      file "swiftbic/bic.py"
        {|COUNTRIES = ["US", "GB", "DE", "FR", "IT", "ES", "NL", "BE", "CH",
             "AT", "SE", "NO", "DK", "FI", "PL", "IE", "PT", "GR",
             "CZ", "HU", "RO", "BG", "HR", "SK", "CA", "MX", "BR",
             "AR", "CL", "CO", "PE", "JP", "CN", "KR", "IN", "AU",
             "NZ", "SG", "HK", "TW", "TH", "MY", "ID", "PH", "VN",
             "RU", "TR", "ZA", "EG", "NG", "KE", "IL", "SA", "AE", "QA"]

def parse_bic(bic):
    bic = bic.strip().upper()
    if len(bic) != 8 and len(bic) != 11:
        raise ValueError("BIC must be 8 or 11 characters")
    bank = bic[:4]
    if not bank.isalpha():
        raise ValueError("bank code must be letters")
    country = bic[4:6]
    if country not in COUNTRIES:
        raise ValueError("unknown country code")
    location = bic[6:8]
    if not location.isalnum():
        raise ValueError("bad location code")
    branch = bic[8:]
    if len(branch) > 0 and not branch.isalnum():
        raise ValueError("bad branch code")
    return {"bank": bank, "country": country, "location": location}
|};
    ]

let btc_tools =
  Repolib.Repo.make "cryptoutils/btc-address"
    "Bitcoin address format checks (base58, P2PKH/P2SH prefixes)"
    ~stars:203
    ~truth:[ ("check_address_format", [ "bitcoin-address" ]) ]
    [
      file "btc/address.py"
        {|BASE58 = "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz"

def check_address_format(addr):
    if len(addr) < 26 or len(addr) > 35:
        return False
    first = addr[0]
    if first != "1" and first != "3":
        return False
    for ch in addr:
        if ch not in BASE58:
            return False
    return True
|};
    ]

let asin_gist =
  Repolib.Repo.make "gist/amazon-asin"
    "gist: extract and check amazon ASIN book identifiers"
    ~stars:12
    ~truth:[ ("check_asin", [ "asin"; "isbn" ]) ]
      (* older ASINs are ISBN-10s; the function genuinely processes both *)
    [
      file "gist/asin.py"
        {|def check_asin(asin):
    asin = asin.strip().upper()
    if len(asin) != 10:
        return False
    if asin[:2] == "B0":
        if not asin.isalnum():
            return False
        return True
    # older ASINs are ISBN-10s
    total = 0
    i = 0
    while i < 9:
        if not asin[i].isdigit():
            return False
        total = total + (10 - i) * (ord(asin[i]) - 48)
        i = i + 1
    last = asin[9]
    if last == "X":
        total = total + 10
    elif last.isdigit():
        total = total + ord(last) - 48
    else:
        return False
    return total % 11 == 0
|};
    ]

let repos =
  [
    cardcheck; py_payments; luhn_gist; naive_card; iban_tools; securities;
    bankutils; barcode_lib; upc_quick; moneyfmt; tickerdb; swift_bic;
    btc_tools; asin_gist;
  ]
