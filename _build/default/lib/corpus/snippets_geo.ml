(** Hand-written "mined" repositories for geographic and personal types:
    addresses, zipcodes, postcodes, coordinates, countries, states,
    airports, phone numbers, person names, SSNs. *)

let file = Corpus_util.file

let zipdb =
  Repolib.Repo.make "geodata/zipdb"
    "US zipcode lookup: city, state and coordinates"
    ~readme:
      "Resolve a US zipcode to its city and state using an embedded \
       prefix table; supports ZIP+4."
    ~stars:156
    ~truth:
      [ ("zip_to_state", [ "us-zipcode" ]); ("check_zip", [ "us-zipcode" ]) ]
    [
      file "zipdb/lookup.py"
        {|PREFIX_STATE = {"0": "MA", "1": "NY", "2": "DC", "3": "FL", "4": "MI",
                "5": "IA", "6": "IL", "7": "TX", "8": "CO", "9": "CA"}

def check_zip(code):
    code = code.strip()
    main = code
    if "-" in code:
        dash = code.find("-")
        main = code[:dash]
        plus4 = code[dash + 1:]
        if len(plus4) != 4 or not plus4.isdigit():
            raise ValueError("bad ZIP+4 extension")
    if len(main) != 5:
        raise ValueError("zipcode must be 5 digits")
    if not main.isdigit():
        raise ValueError("zipcode must be numeric")
    return main

def zip_to_state(code):
    main = check_zip(code)
    return PREFIX_STATE[main[0]]
|};
    ]

let uk_post =
  Repolib.Repo.make "geodata/uk-postcodes"
    "UK postcode validation: outward and inward code structure"
    ~stars:92
    ~truth:[ ("valid_postcode", [ "uk-postcode" ]) ]
    [
      file "ukpost/check.py"
        {|def valid_postcode(code):
    code = code.strip().upper()
    parts = code.split(" ")
    if len(parts) != 2:
        return False
    outward = parts[0]
    inward = parts[1]
    if len(outward) < 2 or len(outward) > 4:
        return False
    if not outward[0].isalpha():
        return False
    has_digit = False
    for ch in outward:
        if ch.isdigit():
            has_digit = True
        elif not ch.isalpha():
            return False
    if not has_digit:
        return False
    if len(inward) != 3:
        return False
    if not inward[0].isdigit():
        return False
    if not inward[1].isalpha() or not inward[2].isalpha():
        return False
    return True
|};
    ]

let ca_post =
  Repolib.Repo.make "geodata/ca-postal"
    "Canadian postal code format check (A1A 1A1)"
    ~stars:33
    ~truth:[ ("valid_ca_postal", [ "ca-postcode" ]) ]
    [
      file "capost/check.py"
        {|def valid_ca_postal(code):
    code = code.strip().upper()
    if len(code) != 7:
        return False
    if code[3] != " ":
        return False
    pattern = "ADADAD"
    compact = code[:3] + code[4:]
    i = 0
    while i < 6:
        ch = compact[i]
        if pattern[i] == "A":
            if not ch.isalpha():
                return False
        else:
            if not ch.isdigit():
                return False
        i = i + 1
    return True
|};
    ]

let address_parse =
  Repolib.Repo.make "geocode/address-parser"
    "US street address parsing: number, street, city, state, zip"
    ~readme:
      "Split a one-line mailing address into components and validate the \
       state abbreviation and zipcode against reference data."
    ~stars:274
    ~truth:
      [ ("AddressParser.parse", [ "address" ]);
        ("state_of_address", [ "address" ]) ]
    [
      file "addrparse/parser.py"
        {|STATES = ["AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA",
          "HI", "ID", "IL", "IN", "IA", "KS", "KY", "LA", "ME", "MD",
          "MA", "MI", "MN", "MS", "MO", "MT", "NE", "NV", "NH", "NJ",
          "NM", "NY", "NC", "ND", "OH", "OK", "OR", "PA", "RI", "SC",
          "SD", "TN", "TX", "UT", "VT", "VA", "WA", "WV", "WI", "WY", "DC"]
SUFFIXES = ["St", "St.", "Street", "Ave", "Ave.", "Avenue", "Rd", "Rd.",
            "Road", "Blvd", "Blvd.", "Boulevard", "Dr", "Dr.", "Drive",
            "Ln", "Ln.", "Lane", "Way", "Ct", "Ct.", "Court", "Pl",
            "Pl.", "Place"]

class AddressParser:
    def __init__(self):
        self.number = ""
        self.street = ""
        self.city = ""
        self.state = ""
        self.zipcode = ""

    def parse(self, line):
        comma = line.find(",")
        if comma < 0:
            raise ValueError("expected comma between street and city")
        street_part = line[:comma].strip()
        rest = line[comma + 1:].strip()
        words = []
        for w in street_part.split(" "):
            if w != "":
                words.append(w)
        if len(words) < 3:
            raise ValueError("street part too short")
        if not words[0].isdigit():
            raise ValueError("house number must be numeric")
        self.number = words[0]
        suffix_ok = False
        for w in words[1:]:
            if w in SUFFIXES:
                suffix_ok = True
        if not suffix_ok:
            raise ValueError("no street suffix found")
        self.street = " ".join(words[1:])
        tail = []
        for w in rest.split(" "):
            if w != "":
                tail.append(w)
        if len(tail) < 2:
            raise ValueError("missing city or state")
        last = tail[len(tail) - 1]
        if last.isdigit() or "-" in last:
            self.zipcode = last
            if len(self.zipcode) < 5:
                raise ValueError("bad zipcode")
            tail = tail[:len(tail) - 1]
        if len(tail) < 2:
            raise ValueError("missing city or state")
        self.state = tail[len(tail) - 1]
        if self.state not in STATES:
            raise ValueError("unknown state abbreviation")
        self.city = " ".join(tail[:len(tail) - 1])
        return self

def state_of_address(line):
    p = AddressParser()
    p.parse(line)
    return p.state
|};
    ]

let geo_coords =
  Repolib.Repo.make "geocode/coord-convert"
    "Coordinate conversions: long/lat, UTM zones, MGRS grid references"
    ~stars:188
    ~truth:
      [ ("check_lat_lon", [ "longlat" ]);
        ("parse_utm", [ "utm" ]);
        ("parse_mgrs", [ "mgrs" ]) ]
    [
      file "coords/latlon.py"
        {|def check_lat_lon(lat, lon):
    latv = float(lat)
    lonv = float(lon)
    if latv < -90.0 or latv > 90.0:
        raise ValueError("latitude out of range")
    if lonv < -180.0 or lonv > 180.0:
        raise ValueError("longitude out of range")
    return [latv, lonv]
|};
      file "coords/utm.py"
        {|BANDS = "CDEFGHJKLMNPQRSTUVWX"

def parse_utm(text):
    tokens = []
    for t in text.strip().split(" "):
        if t != "":
            tokens.append(t)
    if len(tokens) != 3:
        raise ValueError("expected zone easting northing")
    zone = tokens[0]
    band = zone[len(zone) - 1]
    if band not in BANDS:
        raise ValueError("bad latitude band")
    num = zone[:len(zone) - 1]
    if not num.isdigit():
        raise ValueError("zone number must be numeric")
    z = int(num)
    if z < 1 or z > 60:
        raise ValueError("zone out of range")
    easting = tokens[1]
    northing = tokens[2]
    if not easting.isdigit() or not northing.isdigit():
        raise ValueError("coordinates must be numeric")
    if len(easting) < 5 or len(easting) > 7:
        raise ValueError("bad easting length")
    if len(northing) < 6 or len(northing) > 8:
        raise ValueError("bad northing length")
    return [z, band, int(easting), int(northing)]
|};
      file "coords/mgrs.py"
        {|BANDS2 = "CDEFGHJKLMNPQRSTUVWX"

def parse_mgrs(ref):
    ref = ref.strip().upper()
    if len(ref) < 7:
        raise ValueError("too short")
    zlen = 1
    if ref[1].isdigit():
        zlen = 2
    zone = int(ref[:zlen])
    if zone < 1 or zone > 60:
        raise ValueError("zone out of range")
    band = ref[zlen]
    if band not in BANDS2:
        raise ValueError("bad band letter")
    sq = ref[zlen + 1:zlen + 3]
    if not sq.isalpha():
        raise ValueError("bad 100km square")
    digits = ref[zlen + 3:]
    if not digits.isdigit():
        raise ValueError("grid digits expected")
    if len(digits) % 2 != 0:
        raise ValueError("easting and northing must have equal length")
    if len(digits) > 10:
        raise ValueError("too much precision")
    return [zone, band, sq, digits]
|};
    ]

let country_db =
  Repolib.Repo.make "geodata/country-codes"
    "ISO 3166 country codes and names lookup"
    ~stars:240
    ~truth:
      [ ("country_info", [ "country-code" ]);
        ("iso2_of", [ "country-code" ]) ]
    [
      file "countries/db.py"
        {|ISO2 = {"US": "United States", "GB": "United Kingdom", "DE": "Germany",
        "FR": "France", "IT": "Italy", "ES": "Spain", "NL": "Netherlands",
        "BE": "Belgium", "CH": "Switzerland", "AT": "Austria",
        "SE": "Sweden", "NO": "Norway", "DK": "Denmark", "FI": "Finland",
        "PL": "Poland", "IE": "Ireland", "PT": "Portugal", "GR": "Greece",
        "CZ": "Czechia", "HU": "Hungary", "RO": "Romania", "BG": "Bulgaria",
        "HR": "Croatia", "SK": "Slovakia", "CA": "Canada", "MX": "Mexico",
        "BR": "Brazil", "AR": "Argentina", "CL": "Chile", "CO": "Colombia",
        "PE": "Peru", "JP": "Japan", "CN": "China", "KR": "South Korea",
        "IN": "India", "AU": "Australia", "NZ": "New Zealand",
        "SG": "Singapore", "HK": "Hong Kong", "TW": "Taiwan",
        "TH": "Thailand", "MY": "Malaysia", "ID": "Indonesia",
        "PH": "Philippines", "VN": "Vietnam", "RU": "Russia",
        "TR": "Turkey", "ZA": "South Africa", "EG": "Egypt",
        "NG": "Nigeria", "KE": "Kenya", "IL": "Israel",
        "SA": "Saudi Arabia", "AE": "UAE", "QA": "Qatar"}

def iso2_of(name):
    name = name.strip()
    if name in ISO2:
        return name
    for code in ISO2.keys():
        if ISO2[code] == name:
            return code
    raise KeyError("unknown country")

def country_info(text):
    code = iso2_of(text)
    full = ISO2[code]
    return {"code": code, "name": full}
|};
    ]

let state_abbrev =
  Repolib.Repo.make "usdata/state-abbrev"
    "US state abbreviation expansion"
    ~stars:41
    ~truth:[ ("expand_state", [ "us-state" ]) ]
    [
      file "states/expand.py"
        {|NAMES = {"AL": "Alabama", "AK": "Alaska", "AZ": "Arizona",
         "AR": "Arkansas", "CA": "California", "CO": "Colorado",
         "CT": "Connecticut", "DE": "Delaware", "FL": "Florida",
         "GA": "Georgia", "HI": "Hawaii", "ID": "Idaho", "IL": "Illinois",
         "IN": "Indiana", "IA": "Iowa", "KS": "Kansas", "KY": "Kentucky",
         "LA": "Louisiana", "ME": "Maine", "MD": "Maryland",
         "MA": "Massachusetts", "MI": "Michigan", "MN": "Minnesota",
         "MS": "Mississippi", "MO": "Missouri", "MT": "Montana",
         "NE": "Nebraska", "NV": "Nevada", "NH": "New Hampshire",
         "NJ": "New Jersey", "NM": "New Mexico", "NY": "New York",
         "NC": "North Carolina", "ND": "North Dakota", "OH": "Ohio",
         "OK": "Oklahoma", "OR": "Oregon", "PA": "Pennsylvania",
         "RI": "Rhode Island", "SC": "South Carolina", "SD": "South Dakota",
         "TN": "Tennessee", "TX": "Texas", "UT": "Utah", "VT": "Vermont",
         "VA": "Virginia", "WA": "Washington", "WV": "West Virginia",
         "WI": "Wisconsin", "WY": "Wyoming", "DC": "District of Columbia"}

def expand_state(abbrev):
    abbrev = abbrev.strip()
    if abbrev not in NAMES:
        raise KeyError("not a state abbreviation")
    return NAMES[abbrev]
|};
    ]

let airport_db =
  Repolib.Repo.make "aviation/airport-info"
    "IATA airport code database with city and country"
    ~stars:118
    ~truth:[ ("airport_city", [ "airport-code" ]) ]
    [
      file "airports/info.py"
        {|AIRPORTS = {"SEA": "Seattle", "SFO": "San Francisco", "LAX": "Los Angeles",
            "JFK": "New York", "ORD": "Chicago", "ATL": "Atlanta",
            "DFW": "Dallas", "DEN": "Denver", "PHX": "Phoenix",
            "IAH": "Houston", "MIA": "Miami", "BOS": "Boston",
            "LGA": "New York", "EWR": "Newark", "MSP": "Minneapolis",
            "DTW": "Detroit", "PHL": "Philadelphia", "CLT": "Charlotte",
            "LAS": "Las Vegas", "MCO": "Orlando", "SLC": "Salt Lake City",
            "BWI": "Baltimore", "DCA": "Washington", "IAD": "Washington",
            "SAN": "San Diego", "TPA": "Tampa", "PDX": "Portland",
            "STL": "St Louis", "MDW": "Chicago", "HNL": "Honolulu",
            "LHR": "London", "CDG": "Paris", "FRA": "Frankfurt",
            "AMS": "Amsterdam", "MAD": "Madrid", "FCO": "Rome",
            "ZRH": "Zurich", "VIE": "Vienna", "CPH": "Copenhagen",
            "ARN": "Stockholm", "NRT": "Tokyo", "HND": "Tokyo",
            "ICN": "Seoul", "PEK": "Beijing", "PVG": "Shanghai",
            "HKG": "Hong Kong", "SIN": "Singapore", "BKK": "Bangkok",
            "SYD": "Sydney", "MEL": "Melbourne", "YYZ": "Toronto",
            "YVR": "Vancouver", "GRU": "Sao Paulo", "MEX": "Mexico City",
            "DXB": "Dubai", "DOH": "Doha", "IST": "Istanbul",
            "SVO": "Moscow", "DEL": "Delhi", "BOM": "Mumbai"}

def airport_city(code):
    code = code.strip().upper()
    if len(code) != 3:
        raise ValueError("IATA codes are 3 letters")
    if code not in AIRPORTS:
        raise KeyError("unknown airport code")
    return AIRPORTS[code]
|};
    ]

let phone_us_lib =
  Repolib.Repo.make "telco/us-phone"
    "US phone number parsing: area code and exchange extraction"
    ~stars:199
    ~truth:
      [ ("parse_phone", [ "phone" ]); ("area_code", [ "phone" ]) ]
    [
      file "usphone/parse.py"
        {|def parse_phone(number):
    digits = ""
    for ch in number:
        if ch.isdigit():
            digits = digits + ch
        elif ch not in " ()-+.":
            raise ValueError("bad character in phone number")
    if len(digits) == 11:
        if digits[0] != "1":
            raise ValueError("11 digit numbers must start with 1")
        digits = digits[1:]
    if len(digits) != 10:
        raise ValueError("expected 10 digits")
    area = digits[:3]
    if area[0] == "0" or area[0] == "1":
        raise ValueError("invalid area code")
    exchange = digits[3:6]
    line = digits[6:]
    return {"area": area, "exchange": exchange, "line": line}

def area_code(number):
    parts = parse_phone(number)
    return parts["area"]
|};
    ]

let namecheck =
  Repolib.Repo.make "people/gender-from-name"
    "Guess a person's gender from their first name"
    ~readme:
      "Look up the given name against a frequency table of first names \
       and return a gender guess, like social profile enrichers do."
    ~stars:76
    ~truth:[ ("guess_gender", [ "person-name" ]) ]
    [
      file "names/gender.py"
        {|FEMALE = ["mary", "patricia", "jennifer", "linda", "elizabeth",
          "susan", "maria", "fatima", "olga", "yuki"]
MALE = ["james", "robert", "john", "michael", "david", "william",
        "carlos", "wei", "ahmed", "pierre"]

def guess_gender(fullname):
    parts = []
    for p in fullname.strip().split(" "):
        if p != "":
            parts.append(p)
    if len(parts) < 2:
        raise ValueError("expected first and last name")
    for p in parts:
        if not p[0].isupper():
            raise ValueError("names are capitalized")
        for ch in p:
            if not ch.isalpha() and ch not in "'-.":
                raise ValueError("bad character in name")
    first = parts[0].lower()
    if first in FEMALE:
        return "female"
    if first in MALE:
        return "male"
    return "unknown"
|};
    ]

let ssn_check =
  Repolib.Repo.make "hrtools/ssn-validate"
    "US Social Security Number validation with area rules"
    ~stars:64
    ~truth:[ ("valid_ssn", [ "ssn" ]) ]
    [
      file "ssn/check.py"
        {|def valid_ssn(ssn):
    parts = ssn.split("-")
    if len(parts) != 3:
        return False
    area = parts[0]
    group = parts[1]
    serial = parts[2]
    if len(area) != 3 or len(group) != 2 or len(serial) != 4:
        return False
    if not area.isdigit() or not group.isdigit() or not serial.isdigit():
        return False
    if area == "000" or area == "666":
        return False
    if int(area) >= 900:
        return False
    if group == "00" or serial == "0000":
        return False
    return True
|};
    ]

let ein_gist =
  Repolib.Repo.make "gist/ein-format"
    "gist: employer identification number format"
    ~stars:2
    ~truth:[ ("ein_ok", [ "ein" ]) ]
    [
      file "gist/ein.py"
        {|def ein_ok(ein):
    parts = ein.split("-")
    if len(parts) != 2:
        return False
    if len(parts[0]) != 2 or len(parts[1]) != 7:
        return False
    return parts[0].isdigit() and parts[1].isdigit()
|};
    ]

let geojson_lib =
  Repolib.Repo.make "gis/geojson-lint"
    "Structural checks for GeoJSON geometry objects"
    ~stars:97
    ~truth:[ ("lint_geometry", [ "geojson" ]) ]
    [
      file "geojsonlint/lint.py"
        {|KINDS = ["Point", "LineString", "Polygon", "MultiPoint",
         "MultiPolygon", "Feature", "FeatureCollection"]

def lint_geometry(doc):
    doc = doc.strip()
    if len(doc) < 2:
        return False
    if doc[0] != "{" or doc[len(doc) - 1] != "}":
        return False
    if "\"type\"" not in doc:
        return False
    found = False
    for kind in KINDS:
        marker = "\"" + kind + "\""
        if marker in doc:
            found = True
    if not found:
        return False
    depth = 0
    for ch in doc:
        if ch == "{" or ch == "[":
            depth = depth + 1
        elif ch == "}" or ch == "]":
            depth = depth - 1
            if depth < 0:
                return False
    return depth == 0
|};
    ]

let repos =
  [
    zipdb; uk_post; ca_post; address_parse; geo_coords; country_db;
    state_abbrev; airport_db; phone_us_lib; namecheck; ssn_check; ein_gist;
    geojson_lib;
  ]
