(** Spec-driven corpus generation.

    Real GitHub hosts many near-duplicate implementations of the same
    validator — ports of python-stdnum, regex one-liners in Gists,
    "awesome validation" collections.  Rather than copy-pasting dozens
    of MiniScript files, this module renders them from specs, with
    style variation (plain function vs. raising parser vs. script
    snippet) driven by a hash of the type id.  This reproduces the
    corpus property behind Figure 9: popular types accumulate several
    independent relevant functions. *)

let file = Corpus_util.file

(* ------------------------------------------------------------------ *)
(* Regex one-liner validators                                          *)
(* ------------------------------------------------------------------ *)

type regex_spec = {
  type_id : string;
  fname : string;
  pattern : string;
  strip_chars : string;  (** characters removed before matching *)
  upper : bool;
}

let rx ?(strip = "") ?(upper = false) type_id fname pattern =
  { type_id; fname; pattern; strip_chars = strip; upper }

let regex_specs =
  [
    rx ~strip:" -" "credit-card" "re_credit_card"
      "^(4[0-9]{12}([0-9]{3})?|5[1-5][0-9]{14}|3[47][0-9]{13}|6011[0-9]{12})$";
    rx "email" "re_email" "^[a-zA-Z0-9._%+-]+@[a-zA-Z0-9-]+(\\.[a-zA-Z0-9-]+)*\\.[a-zA-Z]{2,}$";
    rx "ipv4" "re_ipv4"
      "^(25[0-5]|2[0-4][0-9]|1[0-9][0-9]|[1-9]?[0-9])(\\.(25[0-5]|2[0-4][0-9]|1[0-9][0-9]|[1-9]?[0-9])){3}$";
    rx "us-zipcode" "re_zipcode" "^[0-9]{5}(-[0-9]{4})?$";
    rx "phone" "re_phone"
      "^(\\+1 )?(\\([0-9]{3}\\) ?|[0-9]{3}[-. ]?)[0-9]{3}[-. ]?[0-9]{4}$";
    rx "url" "re_url" "^(http|https|ftp)://[a-zA-Z0-9.-]+\\.[a-zA-Z]{2,}(:[0-9]+)?(/[^ ]*)?$";
    rx ~strip:"- " "isbn" "re_isbn13" "^(978|979)[0-9]{10}$";
    rx ~strip:"-" "issn" "re_issn" "^[0-9]{7}[0-9Xx]$";
    rx "ssn" "re_ssn" "^[0-9]{3}-[0-9]{2}-[0-9]{4}$";
    rx "mac-address" "re_mac" "^([0-9a-fA-F]{2}[:-]){5}[0-9a-fA-F]{2}$";
    rx "md5" "re_md5" "^[0-9a-fA-F]{32}$";
    rx "guid" "re_guid"
      "^[0-9a-fA-F]{8}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}-[0-9a-fA-F]{12}$";
    rx "hex-color" "re_hexcolor" "^#([0-9a-fA-F]{6}|[0-9a-fA-F]{3})$";
    rx ~upper:true "uk-postcode" "re_uk_postcode"
      "^[A-Z]{1,2}[0-9][A-Z0-9]? [0-9][A-Z]{2}$";
    rx "ein" "re_ein" "^[0-9]{2}-[0-9]{7}$";
    rx "snpid" "re_rsid" "^rs[0-9]{3,9}$";
    rx "ensembl-gene" "re_ensembl" "^ENSG[0-9]{11}$";
    rx "hcpcs" "re_hcpcs" "^[A-Z][0-9]{4}$";
    rx "atc-code" "re_atc" "^[A-Z][0-9]{2}[A-Z]{2}[0-9]{2}$";
    rx "fda-ndc" "re_ndc" "^[0-9]{5}-[0-9]{4}-[0-9]{2}$";
    rx "oid" "re_oid" "^[0-2](\\.[0-9]+)+$";
    rx "unix-time" "re_epoch" "^1[0-9]{9}$";
    rx ~upper:true "isin" "re_isin" "^[A-Z]{2}[A-Z0-9]{9}[0-9]$";
    rx ~upper:true "vin" "re_vin" "^[A-HJ-NPR-Z0-9]{17}$";
    rx "doi" "re_doi" "^10\\.[0-9]{4,}/[^ ]+$";
    rx "orcid" "re_orcid" "^[0-9]{4}-[0-9]{4}-[0-9]{4}-[0-9]{3}[0-9X]$";
    rx "bitcoin-address" "re_btc" "^[13][1-9A-HJ-NP-Za-km-z]{25,34}$";
    rx "msisdn" "re_msisdn" "^\\+?[1-9][0-9]{9,14}$";
    rx "imei" "re_imei" "^[0-9]{15}$";
    rx "pubchem" "re_cid" "^(CID:)?[0-9]{2,9}$";
  ]

let render_regex_fn (s : regex_spec) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "def %s(value):\n" s.fname);
  Buffer.add_string buf "    value = value.strip()\n";
  String.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "    value = value.replace(%C, \"\")\n" c))
    s.strip_chars;
  if s.upper then Buffer.add_string buf "    value = value.upper()\n";
  Buffer.add_string buf
    (Printf.sprintf "    if re.match(\"%s\", value):\n" s.pattern);
  Buffer.add_string buf "        return True\n    return False\n";
  Buffer.contents buf

(** One big "awesome validators" collection repo, like the community
    regex collections on GitHub. *)
let regex_collection : Repolib.Repo.t =
  let source =
    "import re\n\n"
    ^ String.concat "\n" (List.map render_regex_fn regex_specs)
  in
  let names =
    regex_specs
    |> List.map (fun s -> s.type_id)
    |> List.sort_uniq String.compare
    |> List.filter_map (fun id ->
           Option.map (fun (t : Semtypes.Registry.t) -> t.name)
             (Semtypes.Registry.find id))
  in
  Repolib.Repo.make "awesome-data/regex-validators"
    ("Community collection of regex validators for common data formats: "
    ^ String.concat ", " names)
    ~readme:
      "One regular expression per format. Contributions welcome. \
       Formats covered include credit card, email address, IPv4, \
       zipcode, phone number, url, ISBN, ISSN, SSN, MAC address, MD5, \
       GUID, hex color, UK postal code, ISIN, VIN, DOI, ORCID, bitcoin \
       address, IMEI and more."
    ~stars:1530
    ~truth:(List.map (fun s -> (s.fname, [ s.type_id ])) regex_specs)
    [ file "validators/regexes.py" source ]

(* ------------------------------------------------------------------ *)
(* Per-type gist one-liners for the long tail                          *)
(* ------------------------------------------------------------------ *)

let gist_specs =
  [
    rx "uniprot" "uniprot_ok" "^[OPQ][0-9][A-Z0-9]{3}[0-9]([A-Z0-9]{4})?$";
    rx "lsid" "lsid_ok" "^urn:lsid:[a-z0-9.-]+:[a-z0-9]+:[0-9]+$";
    rx "icd10" "icd10_ok" "^[A-Z][0-9]{2}(\\.[A-Z0-9]{1,4})?$";
    rx ~upper:true "ca-postcode" "ca_postal_ok" "^[A-Z][0-9][A-Z] [0-9][A-Z][0-9]$";
    rx "http-status" "status_ok" "^[1-5][0-9]{2}$";
    rx "aba-routing" "aba_format_ok" "^[0-9]{9}$";
    rx ~upper:true "sedol" "sedol_format_ok" "^[B-DF-HJ-NP-TV-Z0-9]{6}[0-9]$";
    rx ~upper:true "cusip" "cusip_format_ok" "^[A-Z0-9]{8}[0-9]$";
    rx "ean" "ean13_format_ok" "^[0-9]{13}$";
    rx "gtin" "gtin_format_ok" "^[0-9]{14}$";
    rx ~upper:true "swift-code" "bic_format_ok" "^[A-Z]{4}[A-Z]{2}[A-Z0-9]{2}([A-Z0-9]{3})?$";
    rx "nhs-number" "nhs_format_ok" "^[0-9]{10}$";
    rx "cas-number" "cas_format_ok" "^[0-9]{2,7}-[0-9]{2}-[0-9]$";
    rx "bibcode" "bibcode_format_ok" "^(18|19|20)[0-9]{2}[A-Za-z.&]{5}[0-9.]{9}[A-Z]$";
    rx "isrc" "isrc_format_ok" "^[A-Z]{2}[A-Z0-9]{3}[0-9]{7}$";
    rx "mgrs" "mgrs_format_ok" "^[1-9][0-9]?[C-X][A-Z]{2}([0-9][0-9])+$";
    rx "stock-ticker" "ticker_format_ok" "^[A-Z]{1,5}(\\.[A-Z])?$";
    rx "airport-code" "iata_format_ok" "^[A-Z]{3}$";
    rx "country-code" "iso2_format_ok" "^[A-Z]{2}$";
    rx "us-state" "state_format_ok" "^[A-Z]{2}$";
    rx "imo-number" "imo_format_ok" "^(IMO )?[0-9]{7}$";
    rx ~upper:true "iso6346" "container_format_ok" "^[A-Z]{3}[UJZ][0-9]{7}$";
    rx "inchi" "inchi_format_ok" "^InChI=1S/.+$";
    rx ~upper:true "lei" "lei_format_ok" "^[A-Z0-9]{18}[0-9]{2}$";
    rx "cn-resident-id" "cnid_format_ok" "^[0-9]{17}[0-9X]$";
    rx "dea-number" "dea_format_ok" "^[A-Z][A-Z9][0-9]{7}$";
    rx "longlat" "latlon_format_ok"
      "^-?[0-9]{1,2}\\.[0-9]+, ?-?[0-9]{1,3}\\.[0-9]+$";
    rx "utm" "utm_format_ok" "^[1-9][0-9]?[C-X] [0-9]{5,7} [0-9]{6,8}$";
  ]

let gist_repo_of_spec ?style (s : regex_spec) : Repolib.Repo.t =
  let type_name =
    match Semtypes.Registry.find s.type_id with
    | Some t -> t.Semtypes.Registry.name
    | None -> s.type_id
  in
  (* Style variation: plain return, raising parser, or match-length
     reporter; default keyed on the type id. *)
  let style =
    match style with
    | Some st -> st
    | None -> Hashtbl.hash s.type_id mod 3
  in
  let body =
    match style with
    | 0 -> "import re\n\n" ^ render_regex_fn s
    | 1 ->
      Printf.sprintf
        "import re\n\n\
         def %s(value):\n\
         \    value = value.strip()\n\
         %s%s\
         \    if not re.match(\"%s\", value):\n\
         \        raise ValueError(\"not a valid %s\")\n\
         \    return value\n"
        s.fname
        (String.concat ""
           (List.map
              (fun c -> Printf.sprintf "    value = value.replace(%C, \"\")\n" c)
              (List.init (String.length s.strip_chars) (String.get s.strip_chars))))
        (if s.upper then "    value = value.upper()\n" else "")
        s.pattern type_name
    | _ ->
      Printf.sprintf
        "import re\n\n\
         def %s(value):\n\
         \    value = value.strip()\n\
         %s\
         \    m = re.match(\"%s\", value)\n\
         \    if m:\n\
         \        return len(value)\n\
         \    return 0\n"
        s.fname
        (if s.upper then "    value = value.upper()\n" else "")
        s.pattern
  in
  let owner =
    match style with 0 -> "gist" | 1 -> "snippets" | _ -> "codebits"
  in
  Repolib.Repo.make
    (Printf.sprintf "%s/%s-check" owner s.type_id)
    (Printf.sprintf "%s: quick %s check" owner type_name)
    ~stars:(1 + (Hashtbl.hash s.fname mod 40))
    ~truth:[ (s.fname, [ s.type_id ]) ]
    [ file (Printf.sprintf "%s/%s.py" owner s.fname) body ]

(* Three independently-styled snippets per type, for every regex spec:
   the redundancy real code hosting exhibits (Figure 9's multiple
   relevant functions per type).  Types appearing in both spec lists
   get gists from each; function names never collide. *)
let gist_repos =
  let seen = Hashtbl.create 64 in
  List.concat_map
    (fun s ->
      if Hashtbl.mem seen s.type_id then []
      else begin
        Hashtbl.add seen s.type_id ();
        [ gist_repo_of_spec ~style:0 s; gist_repo_of_spec ~style:1 s;
          gist_repo_of_spec ~style:2 s ]
      end)
    (gist_specs @ regex_specs)

(* ------------------------------------------------------------------ *)
(* Forks of popular repositories                                       *)
(* ------------------------------------------------------------------ *)

(** GitHub is full of forks: same code under another owner.  Forks carry
    the same intent labels and rank independently, multiplying the
    relevant-function counts for popular types exactly as the paper
    observes. *)
let fork ~owner (repo : Repolib.Repo.t) : Repolib.Repo.t =
  let base =
    match String.index_opt repo.Repolib.Repo.repo_name '/' with
    | Some i ->
      String.sub repo.Repolib.Repo.repo_name (i + 1)
        (String.length repo.Repolib.Repo.repo_name - i - 1)
    | None -> repo.Repolib.Repo.repo_name
  in
  (* Fork files get distinct paths so trace sites do not collide. *)
  let files =
    List.map
      (fun (f : Repolib.Repo.file) ->
        { f with Repolib.Repo.path = owner ^ "-" ^ f.Repolib.Repo.path })
      repo.Repolib.Repo.files
  in
  (* Script-level truth labels embed the file path; rename those too. *)
  let truth =
    List.map
      (fun (fname, types) ->
        let fname =
          if String.length fname > 8 && String.sub fname 0 8 = "<script:" then
            "<script:" ^ owner ^ "-"
            ^ String.sub fname 8 (String.length fname - 8)
          else fname
        in
        (fname, types))
      repo.Repolib.Repo.truth
  in
  Repolib.Repo.make
    (owner ^ "/" ^ base)
    (repo.Repolib.Repo.description ^ " (fork)")
    ~readme:repo.Repolib.Repo.readme
    ~stars:(max 1 (repo.Repolib.Repo.stars / 4))
    ~truth files

let forked_repos =
  [
    fork ~owner:"fork-jlee" Snippets_finance.cardcheck;
    fork ~owner:"fork-mchan" Snippets_finance.cardcheck;
    fork ~owner:"fork-avasquez" Snippets_finance.py_payments;
    fork ~owner:"fork-tnguyen" Snippets_finance.iban_tools;
    fork ~owner:"fork-rkumar" Snippets_finance.securities;
    fork ~owner:"fork-bwhite" Snippets_finance.barcode_lib;
    fork ~owner:"fork-osmith" Snippets_finance.moneyfmt;
    fork ~owner:"fork-pgarcia" Snippets_finance.tickerdb;
    fork ~owner:"fork-dmartin" Snippets_finance.swift_bic;
    fork ~owner:"fork-hzhang" Snippets_publication.isbn_tools;
    fork ~owner:"fork-kito" Snippets_publication.isbn_tools;
    fork ~owner:"fork-lrossi" Snippets_publication.issn_lib;
    fork ~owner:"fork-speters" Snippets_publication.orcid_lib;
    fork ~owner:"fork-jmoore" Snippets_net.netaddr;
    fork ~owner:"fork-wklein" Snippets_net.netaddr;
    fork ~owner:"fork-fcosta" Snippets_net.email_lib;
    fork ~owner:"fork-enovak" Snippets_net.urltools;
    fork ~owner:"fork-mjones" Snippets_net.macaddr;
    fork ~owner:"fork-ryilmaz" Snippets_datetime.dateparse;
    fork ~owner:"fork-cdubois" Snippets_datetime.dateparse;
    fork ~owner:"fork-tsilva" Snippets_geo.phone_us_lib;
    fork ~owner:"fork-npatel" Snippets_geo.address_parse;
    fork ~owner:"fork-gmuller" Snippets_geo.zipdb;
    fork ~owner:"fork-iwong" Snippets_geo.country_db;
    fork ~owner:"fork-vpopov" Snippets_geo.airport_db;
    fork ~owner:"fork-asato" Snippets_misc.vin_decoder;
    fork ~owner:"fork-lbrown" Snippets_misc.colorconv;
    fork ~owner:"fork-mrivera" Snippets_misc.roman_lib;
    fork ~owner:"fork-kowens" Snippets_misc.markup;
    fork ~owner:"fork-dcohen" Snippets_science.chemtools;
    fork ~owner:"fork-rfischer" Snippets_science.bioseq;
    fork ~owner:"fork-yliu" Snippets_science.medcodes;
  ]

(* ------------------------------------------------------------------ *)
(* A python-stdnum-style port: many checksum validators in one repo    *)
(* ------------------------------------------------------------------ *)

let render_gs1_fn fname len =
  Printf.sprintf
    {|def %s(number):
    number = number.replace(" ", "").replace("-", "")
    if len(number) != %d:
        return False
    if not number.isdigit():
        return False
    total = 0
    weight = 3
    i = len(number) - 2
    while i >= 0:
        total = total + (ord(number[i]) - 48) * weight
        if weight == 3:
            weight = 1
        else:
            weight = 3
        i = i - 1
    return (10 - total %% 10) %% 10 == ord(number[%d]) - 48
|}
    fname len (len - 1)

let render_luhn_fn fname min_len max_len =
  Printf.sprintf
    {|def %s(number):
    number = number.replace(" ", "").replace("-", "")
    if len(number) < %d or len(number) > %d:
        return False
    if not number.isdigit():
        return False
    total = 0
    parity = len(number) %% 2
    i = 0
    while i < len(number):
        d = ord(number[i]) - 48
        if i %% 2 == parity:
            d = d * 2
            if d > 9:
                d = d - 9
        total = total + d
        i = i + 1
    return total %% 10 == 0
|}
    fname min_len max_len

let stdnum_port : Repolib.Repo.t =
  let source =
    String.concat "\n"
      [
        render_luhn_fn "luhn_valid" 8 19;
        render_luhn_fn "validate_card_number" 13 19;
        render_luhn_fn "validate_imei_number" 15 15;
        render_gs1_fn "validate_ean13_number" 13;
        render_gs1_fn "validate_ean8_number" 8;
        render_gs1_fn "validate_upca_number" 12;
        render_gs1_fn "validate_gln_number" 13;
        render_gs1_fn "validate_gtin14_number" 14;
      ]
  in
  Repolib.Repo.make "stdnum-ports/py-stdnum-lite"
    "Port of the stdnum checksum validators: luhn, credit card, IMEI, \
     EAN barcode, UPC, GLN, GTIN"
    ~readme:
      "A lightweight port of the standard-numbers library. Provides \
       checksum validation for payment card numbers (credit card), \
       device identifiers (IMEI) and GS1 codes (EAN, UPC, GLN, GTIN)."
    ~stars:640
    ~truth:
      [ ("luhn_valid", [ "credit-card"; "imei" ]);
        ("validate_card_number", [ "credit-card" ]);
        ("validate_imei_number", [ "imei" ]);
        ("validate_ean13_number", [ "ean" ]);
        ("validate_ean8_number", [ "ean" ]);
        ("validate_upca_number", [ "upc" ]);
        ("validate_gln_number", [ "gln" ]);
        ("validate_gtin14_number", [ "gtin" ]) ]
    [ file "stdnum/checksums.py" source ]

(* ------------------------------------------------------------------ *)
(* Swift-language filler repositories                                   *)
(* ------------------------------------------------------------------ *)

(** On GitHub, the query "SWIFT" is swamped by Swift-programming-language
    repositories (Appendix J).  Reproducing that requires volume: dozens
    of swift-language repos, each carrying only an incidental Python
    helper script. *)
let swift_filler_repos =
  let topics =
    [ "optionals"; "generics"; "protocols"; "closures"; "enums"; "structs";
      "extensions"; "actors"; "concurrency"; "combine"; "swiftui"; "uikit";
      "codable"; "property-wrappers"; "result-builders"; "macros";
      "error-handling"; "collections"; "strings"; "pattern-matching";
      "memory-management"; "interop"; "testing"; "packages"; "playgrounds";
      "animations"; "networking"; "json-parsing"; "core-data"; "widgets";
      "notifications"; "accessibility"; "localization"; "performance";
      "debugging"; "scripting"; "cli-apps"; "server-side"; "vapor";
      "metal"; "arkit"; "mapkit"; "healthkit"; "watchos"; "tvos" ]
  in
  List.mapi
    (fun i topic ->
      Repolib.Repo.make
        (Printf.sprintf "swiftdev%02d/swift-%s" i topic)
        (Printf.sprintf "swift %s: learn swift %s by example in swift" topic
           topic)
        ~readme:
          (Printf.sprintf
             "swift %s examples for the swift programming language. swift \
              tutorial chapters covering %s with swift playground code. \
              swift swift."
             topic topic)
        ~stars:(100 + ((i * 37) mod 900))
        ~truth:[]
        [
          Corpus_util.file
            (Printf.sprintf "swift-%s/gen_toc.py" topic)
            (Printf.sprintf
               {|def toc_entry_%02d(title):
    out = ""
    for ch in title.lower():
        if ch.isalnum():
            out = out + ch
        elif ch == " ":
            out = out + "-"
    return out
|}
               i);
        ])
    topics

let repos =
  (regex_collection :: stdnum_port :: gist_repos)
  @ forked_repos @ swift_filler_repos
