(** Shared helpers for corpus construction. *)

let file path source : Repolib.Repo.file = { Repolib.Repo.path; source }

(** A generic helpers file, of the kind most real repositories carry
    alongside their topical code.  These functions accept broad classes
    of input (any int, any string), which is precisely what defeats the
    random-negative baseline of Figure 10(c): against random strings
    they separate P from N just as well as the true validators.  The
    [prefix] keeps definition names unique per repository. *)
let utils_file prefix =
  file
    (prefix ^ "/util_helpers.py")
    (Printf.sprintf
       {|# shared helpers
def %s_parse_num(s):
    s = s.strip()
    return int(s.replace(" ", "").replace("-", "").replace(".", ""))

def %s_clean_text(s):
    out = ""
    for ch in s:
        if ch.isalnum() or ch == " ":
            out = out + ch
    return out

def %s_count_digits(s):
    n = 0
    for ch in s:
        if ch.isdigit():
            n = n + 1
    return n

def %s_check_safe_input(s):
    for ch in s:
        if not ch.isalnum() and ch not in " .,-:/@()'+_$#":
            raise ValueError("unexpected character in input")
    return s
|}
       prefix prefix prefix prefix)

(** Attach the generic helpers file to a repository. *)
let with_utils prefix (repo : Repolib.Repo.t) : Repolib.Repo.t =
  { repo with Repolib.Repo.files = repo.Repolib.Repo.files @ [ utils_file prefix ] }
