(** Hand-written "mined" repositories for publication identifiers. *)

let file = Corpus_util.file

let isbn_tools =
  Repolib.Repo.make "booktech/isbn-tools"
    "ISBN-10 and ISBN-13 validation, hyphen handling and conversion"
    ~readme:
      "Validate international standard book numbers. Handles hyphenated \
       and compact forms, ISBN-10 check digits (mod 11, X allowed) and \
       ISBN-13 (GS1 mod 10). Converts between the two."
    ~stars:455
    ~truth:
      [ ("is_isbn13", [ "isbn" ]);
        ("is_isbn10", [ "isbn" ]);
        ("isbn_info", [ "isbn" ]);
        ("isbn10_to_isbn13", [ "isbn" ]) ]
    [
      file "isbntools/validate.py"
        {|def clean_isbn(raw):
    out = ""
    for ch in raw:
        if ch != "-" and ch != " ":
            out = out + ch
    return out

def is_isbn13(raw):
    isbn = clean_isbn(raw)
    if len(isbn) != 13:
        return False
    if not isbn.isdigit():
        return False
    prefix = isbn[:3]
    if prefix != "978" and prefix != "979":
        return False
    total = 0
    i = 0
    while i < 12:
        d = ord(isbn[i]) - 48
        if i % 2 == 0:
            total = total + d
        else:
            total = total + 3 * d
        i = i + 1
    check = (10 - total % 10) % 10
    return check == ord(isbn[12]) - 48

def is_isbn10(raw):
    isbn = clean_isbn(raw)
    if len(isbn) != 10:
        return False
    total = 0
    i = 0
    while i < 9:
        if not isbn[i].isdigit():
            return False
        total = total + (10 - i) * (ord(isbn[i]) - 48)
        i = i + 1
    last = isbn[9]
    if last == "X" or last == "x":
        total = total + 10
    elif last.isdigit():
        total = total + ord(last) - 48
    else:
        return False
    return total % 11 == 0
|};
      file "isbntools/info.py"
        {|GROUPS = {"0": "English", "1": "English", "2": "French", "3": "German",
          "4": "Japanese", "5": "Russian", "7": "Chinese", "88": "Italian",
          "84": "Spanish", "85": "Brazilian", "90": "Dutch", "91": "Swedish"}

def isbn_info(raw):
    isbn = clean_isbn(raw)
    if not is_isbn13(raw):
        raise ValueError("not a valid ISBN-13")
    group = isbn[3]
    language = "other"
    if group in GROUPS:
        language = GROUPS[group]
    publisher = isbn[4:7]
    return {"prefix": isbn[:3], "language": language, "publisher": publisher}

def isbn10_to_isbn13(raw):
    isbn = clean_isbn(raw)
    if not is_isbn10(raw):
        raise ValueError("not a valid ISBN-10")
    body = "978" + isbn[:9]
    total = 0
    i = 0
    while i < 12:
        d = ord(body[i]) - 48
        if i % 2 == 0:
            total = total + d
        else:
            total = total + 3 * d
        i = i + 1
    return body + str((10 - total % 10) % 10)
|};
    ]

let issn_lib =
  Repolib.Repo.make "serials/issn-check"
    "ISSN validation for journals and periodicals"
    ~stars:83
    ~truth:
      [ ("valid_issn", [ "issn" ]); ("<script:gist/issn_quick.py#code>", [ "issn" ]) ]
    [
      file "issn/check.py"
        {|def valid_issn(code):
    code = code.replace("-", "").upper()
    if len(code) != 8:
        return False
    total = 0
    i = 0
    while i < 7:
        if not code[i].isdigit():
            return False
        total = total + (8 - i) * (ord(code[i]) - 48)
        i = i + 1
    last = code[7]
    if last == "X":
        total = total + 10
    elif last.isdigit():
        total = total + ord(last) - 48
    else:
        return False
    return total % 11 == 0
|};
      file "gist/issn_quick.py"
        {|code = "0028-0836"
compact = code.replace("-", "")
if len(compact) != 8:
    print("wrong length")
else:
    s = 0
    i = 0
    ok = True
    while i < 7:
        if not compact[i].isdigit():
            ok = False
        else:
            s = s + (8 - i) * int(compact[i])
        i = i + 1
    if ok:
        last = compact[7]
        if last == "X" or last == "x":
            s = s + 10
        else:
            s = s + int(last)
        if s % 11 == 0:
            print("valid ISSN")
        else:
            print("bad check digit")
|};
    ]

let doi_lib =
  Repolib.Repo.make "scholarly/doi-resolve"
    "DOI identifier parsing and metadata extraction"
    ~stars:132
    ~truth:
      [ ("parse_doi", [ "doi" ]) ]
    [
      file "doi/parse.py"
        {|def parse_doi(doi):
    doi = doi.strip()
    if doi[:4] == "doi:":
        doi = doi[4:]
    if doi[:3] != "10.":
        raise ValueError("DOI must start with 10.")
    slash = doi.find("/")
    if slash < 0:
        raise ValueError("missing suffix separator")
    registrant = doi[3:slash]
    if not registrant.isdigit():
        raise ValueError("registrant code must be numeric")
    if len(registrant) < 4:
        raise ValueError("registrant code too short")
    suffix = doi[slash + 1:]
    if suffix == "":
        raise ValueError("empty suffix")
    return {"registrant": registrant, "suffix": suffix}
|};
    ]

let orcid_lib =
  Repolib.Repo.make "scholarly/orcid-check"
    "ORCID researcher identifier validation (ISO 7064 mod 11-2)"
    ~stars:58
    ~truth:[ ("valid_orcid", [ "orcid" ]) ]
    [
      file "orcid/check.py"
        {|def valid_orcid(orcid):
    compact = orcid.replace("-", "")
    if len(compact) != 16:
        return False
    total = 0
    i = 0
    while i < 15:
        if not compact[i].isdigit():
            return False
        total = (total + ord(compact[i]) - 48) * 2 % 11
        i = i + 1
    result = (12 - total % 11) % 11
    expected = "X"
    if result < 10:
        expected = str(result)
    return compact[15] == expected or (result == 10 and compact[15] == "X")
|};
    ]

let isrc_lib =
  Repolib.Repo.make "musicmeta/isrc-parse"
    "ISRC recording code parsing: country, registrant, year, designation"
    ~stars:29
    ~truth:[ ("parse_isrc", [ "isrc" ]) ]
    [
      file "isrc/parse.py"
        {|COUNTRIES = ["US", "GB", "DE", "FR", "JP", "CA", "AU", "SE", "NL", "IT",
             "ES", "BR", "MX", "KR", "CN", "IN", "RU", "ZA", "NO", "DK",
             "FI", "PL", "IE", "PT", "GR", "CZ", "HU", "BE", "CH", "AT"]

def parse_isrc(isrc):
    compact = isrc.replace("-", "").upper()
    if len(compact) != 12:
        raise ValueError("ISRC is 12 characters")
    country = compact[:2]
    if country not in COUNTRIES:
        raise ValueError("unknown country prefix")
    registrant = compact[2:5]
    if not registrant.isalnum():
        raise ValueError("bad registrant")
    year = compact[5:7]
    if not year.isdigit():
        raise ValueError("year must be digits")
    designation = compact[7:]
    if not designation.isdigit():
        raise ValueError("designation must be digits")
    return {"country": country, "registrant": registrant, "year": year}
|};
    ]

let ismn_lib =
  Repolib.Repo.make "musicmeta/ismn-check"
    "ISMN music number validation (9790 prefix, GS1 checksum)"
    ~stars:11
    ~truth:[ ("valid_ismn", [ "ismn" ]) ]
    [
      file "ismn/check.py"
        {|def valid_ismn(code):
    code = code.replace("-", "").replace(" ", "")
    if len(code) != 13:
        return False
    if code[:4] != "9790":
        return False
    if not code.isdigit():
        return False
    total = 0
    i = 0
    while i < 12:
        d = ord(code[i]) - 48
        if i % 2 == 0:
            total = total + d
        else:
            total = total + 3 * d
        i = i + 1
    return (10 - total % 10) % 10 == ord(code[12]) - 48
|};
    ]

let bibcode_lib =
  Repolib.Repo.make "astro/bibcode-parse"
    "ADS bibcode parsing: year, journal, volume, page"
    ~stars:24
    ~truth:[ ("parse_bibcode", [ "bibcode" ]) ]
    [
      file "bibcode/parse.py"
        {|def parse_bibcode(code):
    code = code.strip()
    if len(code) != 19:
        raise ValueError("bibcodes are 19 characters")
    year = code[:4]
    if not year.isdigit():
        raise ValueError("year must be numeric")
    y = int(year)
    if y < 1800 or y > 2100:
        raise ValueError("implausible year")
    author = code[18]
    if not author.isalpha():
        raise ValueError("author initial expected")
    journal = code[4:9]
    return {"year": y, "journal": journal.replace(".", ""), "initial": author}
|};
    ]

let repos =
  [ isbn_tools; issn_lib; doi_lib; orcid_lib; isrc_lib; ismn_lib; bibcode_lib ]
