(** Hand-written "mined" repositories: transportation identifiers,
    colors, markup formats, roman numerals and the remaining personal
    identifiers. *)

let file = Corpus_util.file

let vin_decoder =
  Repolib.Repo.make "autoparts/vin-decoder"
    "Vehicle Identification Number decoding: region, manufacturer, year"
    ~readme:
      "Decode 17-character VINs. Verifies the position-9 check digit \
       (ISO 3779 transliteration and weights), then extracts the world \
       manufacturer identifier, model year and serial number."
    ~stars:342
    ~truth:
      [ ("vin_check_digit", [ "vin" ]); ("decode_vin", [ "vin" ]) ]
    [
      file "vindecoder/check.py"
        {|TRANSLIT = {"A": 1, "B": 2, "C": 3, "D": 4, "E": 5, "F": 6, "G": 7,
            "H": 8, "J": 1, "K": 2, "L": 3, "M": 4, "N": 5, "P": 7,
            "R": 9, "S": 2, "T": 3, "U": 4, "V": 5, "W": 6, "X": 7,
            "Y": 8, "Z": 9}
WEIGHTS = [8, 7, 6, 5, 4, 3, 2, 10, 0, 9, 8, 7, 6, 5, 4, 3, 2]

def vin_value(ch):
    if ch.isdigit():
        return ord(ch) - 48
    if ch in TRANSLIT:
        return TRANSLIT[ch]
    raise ValueError("character not allowed in VIN")

def vin_check_digit(vin):
    vin = vin.strip().upper()
    if len(vin) != 17:
        raise ValueError("VIN must be 17 characters")
    total = 0
    i = 0
    while i < 17:
        if i != 8:
            total = total + vin_value(vin[i]) * WEIGHTS[i]
        i = i + 1
    rem = total % 11
    if rem == 10:
        return "X"
    return str(rem)

def decode_vin(vin):
    vin = vin.strip().upper()
    if vin_check_digit(vin) != vin[8]:
        raise ValueError("check digit mismatch")
    wmi = vin[:3]
    region = "other"
    first = vin[0]
    if first in "12345":
        region = "North America"
    elif first in "JKLMNPR":
        region = "Asia"
    elif first in "STUVWXYZ":
        region = "Europe"
    year_code = vin[9]
    serial = vin[11:]
    return {"wmi": wmi, "region": region, "year_code": year_code,
            "serial": serial}
|};
    ]

let shipping =
  Repolib.Repo.make "logistics/container-check"
    "ISO 6346 shipping container code validation"
    ~readme:
      "Validate container owner codes and serial numbers with the \
       ISO 6346 check digit (letter values skip multiples of 11)."
    ~stars:54
    ~truth:
      [ ("container_check_digit", [ "iso6346" ]);
        ("valid_container", [ "iso6346" ]) ]
    [
      file "containers/iso6346.py"
        {|LETTER_VALUES = {"A": 10, "B": 12, "C": 13, "D": 14, "E": 15, "F": 16,
                 "G": 17, "H": 18, "I": 19, "J": 20, "K": 21, "L": 23,
                 "M": 24, "N": 25, "O": 26, "P": 27, "Q": 28, "R": 29,
                 "S": 30, "T": 31, "U": 32, "V": 34, "W": 35, "X": 36,
                 "Y": 37, "Z": 38}

def container_check_digit(code):
    total = 0
    i = 0
    factor = 1
    while i < 10:
        ch = code[i]
        if ch.isdigit():
            v = ord(ch) - 48
        elif ch in LETTER_VALUES:
            v = LETTER_VALUES[ch]
        else:
            raise ValueError("bad character")
        total = total + v * factor
        factor = factor * 2
        i = i + 1
    return total % 11 % 10

def valid_container(code):
    code = code.strip().upper()
    if len(code) != 11:
        return False
    owner = code[:4]
    if not owner.isalpha():
        return False
    category = code[3]
    if category != "U" and category != "J" and category != "Z":
        return False
    serial = code[4:10]
    if not serial.isdigit():
        return False
    if not code[10].isdigit():
        return False
    return container_check_digit(code) == ord(code[10]) - 48
|};
    ]

let maritime =
  Repolib.Repo.make "logistics/imo-registry"
    "IMO ship identification number checks"
    ~stars:19
    ~truth:[ ("valid_imo", [ "imo-number" ]) ]
    [
      file "imo/check.py"
        {|def valid_imo(number):
    number = number.strip()
    if number[:4] == "IMO ":
        number = number[4:]
    if len(number) != 7:
        return False
    if not number.isdigit():
        return False
    total = 0
    i = 0
    while i < 6:
        total = total + (7 - i) * (ord(number[i]) - 48)
        i = i + 1
    return total % 10 == ord(number[6]) - 48
|};
    ]

let imei_check =
  Repolib.Repo.make "mobiletools/imei-check"
    "IMEI device identifier validation (15 digits, Luhn)"
    ~stars:93
    ~truth:[ ("valid_imei", [ "imei" ]) ]
    [
      file "imei/check.py"
        {|def valid_imei(imei):
    imei = imei.replace(" ", "").replace("-", "")
    if len(imei) != 15:
        return False
    if not imei.isdigit():
        return False
    total = 0
    i = 0
    while i < 15:
        d = ord(imei[i]) - 48
        if i % 2 == 1:
            d = d * 2
            if d > 9:
                d = d - 9
        total = total + d
        i = i + 1
    return total % 10 == 0
|};
    ]

let colorconv =
  Repolib.Repo.make "designkit/colorconv"
    "Color format conversions: hex, RGB, HSL, CMYK"
    ~readme:
      "Parse and convert CSS color notations. hex_to_rgb validates hex \
       colors while converting; rgb parsing checks channel ranges."
    ~stars:276
    ~truth:
      [ ("hex_to_rgb", [ "hex-color" ]);
        ("parse_rgb", [ "rgb-color" ]);
        ("parse_hsl", [ "hsl-color" ]);
        ("parse_cmyk", [ "cmyk-color" ]) ]
    [
      file "colorconv/hex.py"
        {|HEXDIGITS = "0123456789abcdefABCDEF"

def hex_to_rgb(color):
    color = color.strip()
    if color[0] != "#":
        raise ValueError("hex colors start with #")
    body = color[1:]
    if len(body) == 3:
        body = body[0] + body[0] + body[1] + body[1] + body[2] + body[2]
    if len(body) != 6:
        raise ValueError("expected 6 hex digits")
    for ch in body:
        if ch not in HEXDIGITS:
            raise ValueError("bad hex digit")
    r = int(body[:2], 16)
    g = int(body[2:4], 16)
    b = int(body[4:], 16)
    return [r, g, b]
|};
      file "colorconv/rgb.py"
        {|def channel(value):
    value = value.strip()
    if not value.isdigit():
        raise ValueError("channel must be a number")
    v = int(value)
    if v > 255:
        raise ValueError("channel out of range")
    return v

def parse_rgb(color):
    color = color.strip().lower()
    if color[:4] != "rgb(":
        raise ValueError("expected rgb( prefix")
    if color[len(color) - 1] != ")":
        raise ValueError("missing closing paren")
    body = color[4:len(color) - 1]
    parts = body.split(",")
    if len(parts) != 3:
        raise ValueError("expected 3 channels")
    return [channel(parts[0]), channel(parts[1]), channel(parts[2])]
|};
      file "colorconv/hsl_cmyk.py"
        {|def percent(value):
    value = value.strip()
    if value[len(value) - 1] != "%":
        raise ValueError("expected percent sign")
    num = value[:len(value) - 1]
    if not num.isdigit():
        raise ValueError("percent must be numeric")
    v = int(num)
    if v > 100:
        raise ValueError("percent out of range")
    return v

def parse_hsl(color):
    color = color.strip().lower()
    if color[:4] != "hsl(":
        raise ValueError("expected hsl( prefix")
    body = color[4:len(color) - 1]
    if color[len(color) - 1] != ")":
        raise ValueError("missing closing paren")
    parts = body.split(",")
    if len(parts) != 3:
        raise ValueError("expected h, s, l")
    h = parts[0].strip()
    if not h.isdigit():
        raise ValueError("hue must be numeric")
    if int(h) > 360:
        raise ValueError("hue out of range")
    return [int(h), percent(parts[1]), percent(parts[2])]

def parse_cmyk(color):
    color = color.strip().lower()
    if color[:5] != "cmyk(":
        raise ValueError("expected cmyk( prefix")
    if color[len(color) - 1] != ")":
        raise ValueError("missing closing paren")
    body = color[5:len(color) - 1]
    parts = body.split(",")
    if len(parts) != 4:
        raise ValueError("expected 4 components")
    out = []
    for p in parts:
        out.append(percent(p))
    return out
|};
    ]

let roman_lib =
  Repolib.Repo.make "numerals/roman-convert"
    "Roman numeral to integer conversion with strict validation"
    ~stars:147
    ~truth:
      [ ("roman_to_int", [ "roman-numeral" ]);
        ("int_to_roman", []) ]
    [
      file "roman/convert.py"
        {|VALUES = {"I": 1, "V": 5, "X": 10, "L": 50, "C": 100, "D": 500,
          "M": 1000}
TABLE = [[1000, "M"], [900, "CM"], [500, "D"], [400, "CD"], [100, "C"],
         [90, "XC"], [50, "L"], [40, "XL"], [10, "X"], [9, "IX"],
         [5, "V"], [4, "IV"], [1, "I"]]

def int_to_roman(n):
    if n < 1 or n > 3999:
        raise ValueError("out of range")
    out = ""
    for pair in TABLE:
        v = pair[0]
        sym = pair[1]
        while n >= v:
            out = out + sym
            n = n - v
    return out

def roman_to_int(s):
    if len(s) == 0:
        raise ValueError("empty numeral")
    total = 0
    i = 0
    n = len(s)
    while i < n:
        ch = s[i]
        if ch not in VALUES:
            raise ValueError("not a roman digit")
        v = VALUES[ch]
        if i + 1 < n and v < VALUES[s[i + 1]]:
            total = total - v
        else:
            total = total + v
        i = i + 1
    # strict: re-encoding must give the same string
    if int_to_roman(total) != s:
        raise ValueError("non-canonical numeral")
    return total
|};
    ]

let markup =
  Repolib.Repo.make "textproc/markup-sniff"
    "Detect and minimally parse JSON, XML and HTML fragments"
    ~stars:161
    ~truth:
      [ ("sniff_json", [ "json" ]);
        ("sniff_xml", [ "xml" ]);
        ("sniff_html", [ "html" ]) ]
    [
      file "markup/json_sniff.py"
        {|def sniff_json(text):
    text = text.strip()
    if len(text) < 2:
        return False
    first = text[0]
    last = text[len(text) - 1]
    if first == "{":
        if last != "}":
            return False
    elif first == "[":
        if last != "]":
            return False
    else:
        return False
    depth = 0
    in_string = False
    prev = ""
    for ch in text:
        if in_string:
            if ch == "\"" and prev != "\\":
                in_string = False
        elif ch == "\"":
            in_string = True
        elif ch == "{" or ch == "[":
            depth = depth + 1
        elif ch == "}" or ch == "]":
            depth = depth - 1
            if depth < 0:
                return False
        prev = ch
    return depth == 0 and not in_string
|};
      file "markup/xml_sniff.py"
        {|def sniff_xml(text):
    text = text.strip()
    if len(text) < 7:
        return False
    if text[0] != "<" or text[len(text) - 1] != ">":
        return False
    i = 1
    tag = ""
    while i < len(text) and text[i] != ">" and text[i] != " ":
        tag = tag + text[i]
        i = i + 1
    if tag == "" or tag[0] == "/":
        return False
    closing = "</" + tag + ">"
    tail = text[len(text) - len(closing):]
    return tail == closing
|};
      file "markup/html_sniff.py"
        {|def sniff_html(text):
    lower = text.strip().lower()
    if "<html" in lower:
        return True
    if "<!doctype html" in lower:
        return True
    if "<body" in lower and "</body>" in lower:
        return True
    if "<div" in lower and "</div>" in lower:
        return True
    if "<p>" in lower and "</p>" in lower:
        return True
    return False
|};
    ]

let http_codes =
  Repolib.Repo.make "webkit/http-status-names"
    "HTTP status code reason phrases"
    ~stars:72
    ~truth:[ ("reason_phrase", [ "http-status" ]) ]
    [
      file "httpcodes/reasons.py"
        {|REASONS = {200: "OK", 201: "Created", 204: "No Content",
           301: "Moved Permanently", 302: "Found", 304: "Not Modified",
           400: "Bad Request", 401: "Unauthorized", 403: "Forbidden",
           404: "Not Found", 405: "Method Not Allowed", 409: "Conflict",
           410: "Gone", 418: "I'm a teapot", 429: "Too Many Requests",
           500: "Internal Server Error", 502: "Bad Gateway",
           503: "Service Unavailable"}

def reason_phrase(code):
    code = code.strip()
    if not code.isdigit():
        raise ValueError("status codes are numeric")
    if len(code) != 3:
        raise ValueError("status codes have 3 digits")
    num = int(code)
    if num < 100 or num > 599:
        raise ValueError("status class out of range")
    if num in REASONS:
        return REASONS[num]
    return "Unknown"
|};
    ]

let oid_lib =
  Repolib.Repo.make "asn1kit/oid-parse"
    "ASN.1 object identifier (OID) dotted notation parsing"
    ~stars:27
    ~truth:[ ("parse_oid", [ "oid" ]) ]
    [
      file "oid/parse.py"
        {|def parse_oid(oid):
    parts = oid.strip().split(".")
    if len(parts) < 2:
        raise ValueError("OIDs have at least 2 arcs")
    arcs = []
    for p in parts:
        if not p.isdigit():
            raise ValueError("arcs are numeric")
        arcs.append(int(p))
    if arcs[0] > 2:
        raise ValueError("first arc must be 0, 1 or 2")
    if arcs[0] < 2 and arcs[1] > 39:
        raise ValueError("second arc out of range")
    return arcs
|};
    ]

let lei_check =
  Repolib.Repo.make "regdata/lei-check"
    "Legal Entity Identifier validation (ISO 17442, mod 97-10)"
    ~stars:48
    ~truth:[ ("valid_lei", [ "lei" ]) ]
    [
      file "lei/check.py"
        {|def valid_lei(lei):
    lei = lei.strip().upper()
    if len(lei) != 20:
        return False
    if not lei[18:].isdigit():
        return False
    rem = 0
    for ch in lei:
        if ch.isdigit():
            rem = (rem * 10 + ord(ch) - 48) % 97
        elif ch.isupper():
            rem = (rem * 100 + ord(ch) - 55) % 97
        else:
            return False
    return rem == 1
|};
    ]

let cn_id =
  Repolib.Repo.make "idcards/china-id"
    "Chinese resident identity card number validation and decoding"
    ~stars:211
    ~truth:
      [ ("valid_china_id", [ "cn-resident-id" ]);
        ("birthday_of", [ "cn-resident-id" ]) ]
    [
      file "chinaid/check.py"
        {|WEIGHTS = [7, 9, 10, 5, 8, 4, 2, 1, 6, 3, 7, 9, 10, 5, 8, 4, 2]
CHECKCODES = "10X98765432"

def valid_china_id(cid):
    cid = cid.strip().upper()
    if len(cid) != 18:
        return False
    if not cid[:17].isdigit():
        return False
    total = 0
    i = 0
    while i < 17:
        total = total + (ord(cid[i]) - 48) * WEIGHTS[i]
        i = i + 1
    expected = CHECKCODES[total % 11]
    return cid[17] == expected

def birthday_of(cid):
    if not valid_china_id(cid):
        raise ValueError("invalid ID number")
    year = cid[6:10]
    month = cid[10:12]
    day = cid[12:14]
    m = int(month)
    d = int(day)
    if m < 1 or m > 12 or d < 1 or d > 31:
        raise ValueError("bad birth date")
    return year + "-" + month + "-" + day
|};
    ]

let nhs_lib =
  Repolib.Repo.make "healthdata/nhs-number"
    "NHS number validation (mod 11 check digit)"
    ~stars:31
    ~truth:[ ("valid_nhs", [ "nhs-number" ]) ]
    [
      file "nhs/check.py"
        {|def valid_nhs(number):
    number = number.replace(" ", "")
    if len(number) != 10:
        return False
    if not number.isdigit():
        return False
    total = 0
    i = 0
    while i < 9:
        total = total + (10 - i) * (ord(number[i]) - 48)
        i = i + 1
    check = 11 - total % 11
    if check == 11:
        check = 0
    if check == 10:
        return False
    return check == ord(number[9]) - 48
|};
    ]

let fei_gist =
  Repolib.Repo.make "gist/fda-fei"
    "gist: FDA establishment identifier format"
    ~stars:1
    ~truth:[ ("fei_ok", [ "fei" ]) ]
    [
      file "gist/fei.py"
        {|def fei_ok(fei):
    fei = fei.strip()
    if not fei.isdigit():
        return False
    if len(fei) == 7:
        return True
    if len(fei) == 10 and fei[:2] == "30":
        return True
    return False
|};
    ]

let gln_lib =
  Repolib.Repo.make "gs1tools/gln-check"
    "Global Location Number validation (13 digits, GS1 checksum)"
    ~stars:16
    ~truth:[ ("valid_gln", [ "gln" ]) ]
    [
      file "gln/check.py"
        {|def valid_gln(gln):
    gln = gln.strip()
    if len(gln) != 13:
        return False
    if not gln.isdigit():
        return False
    total = 0
    weight = 3
    i = 11
    while i >= 0:
        total = total + (ord(gln[i]) - 48) * weight
        if weight == 3:
            weight = 1
        else:
            weight = 3
        i = i - 1
    return (10 - total % 10) % 10 == ord(gln[12]) - 48
|};
    ]

(* Script-style tools that read their input from sys.argv or stdin —
   exercising the whole-file invocation variants of Appendix D.1. *)
let roman_cli =
  Repolib.Repo.make "gist/roman-cli"
    "gist: command-line roman number converter"
    ~stars:7
    ~truth:[ ("<script:gist/roman_cli.py#argv>", [ "roman-numeral" ]) ]
    [
      Corpus_util.file "gist/roman_cli.py"
        {|import sys

VALUES = {"I": 1, "V": 5, "X": 10, "L": 50, "C": 100, "D": 500, "M": 1000}

numeral = argv[1]
total = 0
i = 0
while i < len(numeral):
    ch = numeral[i]
    if ch not in VALUES:
        raise ValueError("bad roman digit")
    v = VALUES[ch]
    if i + 1 < len(numeral) and v < VALUES[numeral[i + 1]]:
        total = total - v
    else:
        total = total + v
    i = i + 1
if total < 1 or total > 3999:
    raise ValueError("out of range")
print(total)
|};
    ]

let mac_stdin =
  Repolib.Repo.make "gist/mac-stdin"
    "gist: read a MAC address from stdin and normalize it"
    ~stars:2
    ~truth:[ ("<script:gist/mac_stdin.py#stdin>", [ "mac-address" ]) ]
    [
      Corpus_util.file "gist/mac_stdin.py"
        {|line = input()
mac = line.strip().lower().replace("-", ":")
parts = mac.split(":")
if len(parts) != 6:
    raise ValueError("need 6 octets")
for p in parts:
    if len(p) != 2:
        raise ValueError("bad octet length")
    for ch in p:
        if ch not in "0123456789abcdef":
            raise ValueError("bad hex digit")
print(mac)
|};
    ]

let repos =
  [
    vin_decoder; shipping; maritime; imei_check; colorconv; roman_lib;
    markup; http_codes; oid_lib; lei_check; cn_id; nhs_lib; fei_gist;
    gln_lib; roman_cli; mac_stdin;
  ]
