(** The assembled simulated open-source ecosystem. *)

(* Most substantial repositories also carry a generic helpers file, as
   real projects do; see Corpus_util.with_utils. *)
let add_generic_helpers (repos : Repolib.Repo.t list) : Repolib.Repo.t list =
  List.map
    (fun (r : Repolib.Repo.t) ->
      (* Gists and single-snippet repos stay bare. *)
      if r.Repolib.Repo.stars >= 60 then
        let prefix =
          String.map
            (fun c -> if c = '/' || c = '-' then '_' else c)
            r.Repolib.Repo.repo_name
        in
        Corpus_util.with_utils prefix r
      else r)
    repos

let all_repos : Repolib.Repo.t list =
  add_generic_helpers
    (Snippets_finance.repos @ Snippets_net.repos @ Snippets_datetime.repos
    @ Snippets_geo.repos @ Snippets_publication.repos @ Snippets_science.repos
    @ Snippets_misc.repos @ Snippets_extra.repos @ Distractors.repos
    @ Codegen.repos)

(* The search index over the whole store, built once. *)
let index = lazy (Repolib.Search.build_index all_repos)

let search_index () = Lazy.force index

(** Every repository must parse: enforced by tests and asserted here at
    first use so corpus regressions fail loudly. *)
let parse_failures () =
  List.filter_map
    (fun (r : Repolib.Repo.t) ->
      match Repolib.Repo.parse_all r with
      | Ok _ -> None
      | Error msg -> Some (r.Repolib.Repo.repo_name, msg))
    all_repos

(** All candidates a full corpus scan yields (used by coverage stats). *)
let all_candidates () =
  List.concat_map Repolib.Analyzer.candidates_of_repo all_repos

(** Ground-truth relevant functions for a benchmark type across the
    whole corpus: the paper's intention score I(F) support. *)
let intended_candidates type_id =
  all_candidates ()
  |> List.filter (fun (c : Repolib.Candidate.t) ->
         Repolib.Repo.intends c.Repolib.Candidate.repo
           ~func_name:c.Repolib.Candidate.func_name ~type_id)
