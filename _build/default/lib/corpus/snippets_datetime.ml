(** Hand-written "mined" repositories for date/time types — the
    paper's canonical example of *implicit* validation: code written to
    parse dates into components rejects invalid dates as a side effect
    ("Sep" is a month, "Abc" is not). *)

let file = Corpus_util.file

let dateparse =
  Repolib.Repo.make "timekit/dateparse"
    "Parse date strings into year, month and day components"
    ~readme:
      "Supports ISO dates (2017-01-31), US dates (01/31/2017) and \
       textual dates (Jan 01, 2017). Validates month lengths and leap \
       years while parsing."
    ~stars:602
    ~truth:
      [ ("parse_iso_date", [ "datetime" ]);
        ("parse_us_date", [ "datetime" ]);
        ("parse_textual_date", [ "datetime" ]);
        ("parse_any_date", [ "datetime" ]) ]
    [
      file "dateparse/common.py"
        {|DAYS_IN_MONTH = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31]

def is_leap(year):
    if year % 400 == 0:
        return True
    if year % 100 == 0:
        return False
    return year % 4 == 0

def check_ymd(year, month, day):
    if year < 1000 or year > 2999:
        raise ValueError("year out of range")
    if month < 1 or month > 12:
        raise ValueError("month out of range")
    limit = DAYS_IN_MONTH[month - 1]
    if month == 2 and is_leap(year):
        limit = 29
    if day < 1 or day > limit:
        raise ValueError("day out of range")
    return [year, month, day]
|};
      file "dateparse/iso.py"
        {|def parse_iso_date(text):
    text = text.strip()
    sep = "-"
    if "/" in text and "-" not in text:
        sep = "/"
    parts = text.split(sep)
    if len(parts) != 3:
        raise ValueError("expected year-month-day")
    y = parts[0]
    m = parts[1]
    d = parts[2]
    if len(y) != 4:
        raise ValueError("year must be 4 digits")
    year = int(y)
    month = int(m)
    day = int(d)
    return check_ymd(year, month, day)
|};
      file "dateparse/us.py"
        {|def parse_us_date(text):
    parts = text.strip().split("/")
    if len(parts) != 3:
        raise ValueError("expected month/day/year")
    month = int(parts[0])
    day = int(parts[1])
    y = parts[2]
    if len(y) != 4 and len(y) != 2:
        raise ValueError("year must be 2 or 4 digits")
    year = int(y)
    if year < 100:
        year = 2000 + year
    return check_ymd(year, month, day)
|};
      file "dateparse/textual.py"
        {|MONTHS = {"jan": 1, "feb": 2, "mar": 3, "apr": 4, "may": 5, "jun": 6,
          "jul": 7, "aug": 8, "sep": 9, "oct": 10, "nov": 11, "dec": 12,
          "january": 1, "february": 2, "march": 3, "april": 4, "june": 6,
          "july": 7, "august": 8, "september": 9, "october": 10,
          "november": 11, "december": 12}

def parse_textual_date(text):
    cleaned = text.replace(",", " ").lower()
    tokens = []
    for t in cleaned.split(" "):
        if t != "":
            tokens.append(t)
    if len(tokens) != 3:
        raise ValueError("expected month day year")
    month_name = tokens[0]
    day_tok = tokens[1]
    if month_name not in MONTHS:
        # also accept "15 Sep 2011" ordering
        month_name = tokens[1]
        day_tok = tokens[0]
        if month_name not in MONTHS:
            raise ValueError("unknown month name")
    month = MONTHS[month_name]
    day = int(day_tok)
    year = int(tokens[2])
    return check_ymd(year, month, day)
|};
      file "dateparse/any.py"
        {|def parse_any_date(text):
    text = text.strip()
    # split off a trailing HH:MM[:SS] time if present
    space = text.rfind(" ")
    if space > 0 and ":" in text[space + 1:]:
        clock = text[space + 1:]
        pieces = clock.split(":")
        if len(pieces) < 2 or len(pieces) > 3:
            raise ValueError("bad time")
        hour = int(pieces[0])
        minute = int(pieces[1])
        if hour > 23 or minute > 59:
            raise ValueError("time out of range")
        text = text[:space]
    digits = 0
    for ch in text:
        if ch.isdigit():
            digits = digits + 1
    if "/" in text and digits >= 5:
        try:
            return parse_us_date(text)
        except ValueError:
            return parse_iso_date(text)
    if "-" in text:
        return parse_iso_date(text)
    return parse_textual_date(text)
|};
    ]

let epoch_tools =
  Repolib.Repo.make "timekit/epoch-tools"
    "UNIX epoch timestamp conversion helpers"
    ~stars:71
    ~truth:[ ("from_unix", [ "unix-time" ]) ]
    [
      file "epoch/convert.py"
        {|def from_unix(ts):
    ts = ts.strip()
    if not ts.isdigit():
        raise ValueError("timestamp must be numeric")
    if len(ts) == 13:
        # milliseconds
        ts = ts[:10]
    if len(ts) != 10:
        raise ValueError("expected a 10 digit epoch")
    seconds = int(ts)
    if seconds < 100000000:
        raise ValueError("timestamp too old")
    days = seconds // 86400
    year = 1970 + days // 365
    return year
|};
    ]

let clock_gist =
  Repolib.Repo.make "gist/hhmmss-check"
    "gist: validate HH:MM:SS clock strings"
    ~stars:6
    ~truth:[ ("valid_clock", [ "datetime" ]) ]
    [
      file "gist/clock.py"
        {|def valid_clock(t):
    parts = t.split(":")
    if len(parts) < 2 or len(parts) > 3:
        return False
    for p in parts:
        if not p.isdigit():
            return False
    h = int(parts[0])
    m = int(parts[1])
    if h > 23 or m > 59:
        return False
    if len(parts) == 3 and int(parts[2]) > 59:
        return False
    return True
|};
    ]

let repos = [ dateparse; epoch_tools; clock_gist ]
