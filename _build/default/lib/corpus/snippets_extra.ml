(** A second wave of independent implementations for the popular types:
    alternative algorithms and code styles for types that, on real code
    hosting, accumulate many implementations (Figure 9's long tail). *)

let file = Corpus_util.file

(* Luhn via the doubled-digit lookup table — a genuinely different
   implementation style from the arithmetic versions. *)
let card_table =
  Repolib.Repo.make "paykit/luhn-table"
    "Credit card checksum via precomputed doubling table"
    ~stars:88
    ~truth:[ ("card_ok", [ "credit-card" ]) ]
    [
      file "luhntable/check.py"
        {|DOUBLED = [0, 2, 4, 6, 8, 1, 3, 5, 7, 9]

def card_ok(number):
    number = number.replace(" ", "").replace("-", "")
    if len(number) < 13 or len(number) > 19:
        return False
    total = 0
    odd = True
    i = len(number) - 1
    while i >= 0:
        d = ord(number[i]) - 48
        if d < 0 or d > 9:
            return False
        if odd:
            total = total + d
        else:
            total = total + DOUBLED[d]
        odd = not odd
        i = i - 1
    return total % 10 == 0
|};
    ]

(* A recursive date parser with per-component validators. *)
let dateutil_like =
  Repolib.Repo.make "timekit/dateutil-lite"
    "Flexible date parsing: component validators and format guessing"
    ~readme:
      "A lightweight port of the dateutil parser idea: try each known \
       format and validate components while assembling the result."
    ~stars:820
    ~truth:
      [ ("Dateparse.parse", [ "datetime" ]); ("guess_format", [ "datetime" ]) ]
    [
      file "dateutil/parser.py"
        {|MONTH_NAMES = ["jan", "feb", "mar", "apr", "may", "jun", "jul",
               "aug", "sep", "oct", "nov", "dec"]

def month_number(token):
    token = token.lower()[:3]
    i = 0
    while i < 12:
        if MONTH_NAMES[i] == token:
            return i + 1
        i = i + 1
    return 0

def days_in(year, month):
    if month == 2:
        if year % 4 == 0 and (year % 100 != 0 or year % 400 == 0):
            return 29
        return 28
    if month in [4, 6, 9, 11]:
        return 30
    return 31

def guess_format(text):
    text = text.strip()
    if "-" in text:
        return "iso"
    if "/" in text:
        return "us"
    return "textual"

class Dateparse:
    def __init__(self):
        self.year = 0
        self.month = 0
        self.day = 0

    def parse(self, text):
        text = text.strip()
        space = text.rfind(" ")
        if space > 0 and ":" in text[space + 1:]:
            text = text[:space]
        kind = guess_format(text)
        if kind == "iso":
            parts = text.split("-")
            if len(parts) != 3:
                raise ValueError("iso needs 3 parts")
            self.year = int(parts[0])
            self.month = int(parts[1])
            self.day = int(parts[2])
        elif kind == "us":
            parts = text.split("/")
            if len(parts) != 3:
                raise ValueError("us needs 3 parts")
            self.month = int(parts[0])
            self.day = int(parts[1])
            self.year = int(parts[2])
            if self.year < 100:
                self.year = self.year + 2000
        else:
            cleaned = text.replace(",", " ")
            tokens = []
            for t in cleaned.split(" "):
                if t != "":
                    tokens.append(t)
            if len(tokens) != 3:
                raise ValueError("textual needs month day year")
            m = month_number(tokens[0])
            d = tokens[1]
            if m == 0:
                m = month_number(tokens[1])
                d = tokens[0]
            if m == 0:
                raise ValueError("no month name")
            self.month = m
            self.day = int(d)
            self.year = int(tokens[2])
        if self.year < 1000 or self.year > 2999:
            raise ValueError("year out of range")
        if self.month < 1 or self.month > 12:
            raise ValueError("month out of range")
        if self.day < 1 or self.day > days_in(self.year, self.month):
            raise ValueError("day out of range")
        return self
|};
    ]

(* An email checker in the raising-parser style with MX-table lookup. *)
let email_mx =
  Repolib.Repo.make "mailkit/mx-verify"
    "Email verification with a TLD allowlist, as mail relays do"
    ~stars:149
    ~truth:[ ("relay_accepts", [ "email" ]) ]
    [
      file "mxverify/relay.py"
        {|TLDS = ["com", "org", "net", "edu", "io", "gov", "de", "uk", "fr",
        "jp", "ca", "au", "us", "ch", "nl", "se", "es", "it"]

def relay_accepts(address):
    address = address.strip()
    at = address.find("@")
    if at <= 0:
        raise ValueError("missing local part")
    local = address[:at]
    domain = address[at + 1:]
    for ch in local:
        if not ch.isalnum() and ch not in "._%+-":
            raise ValueError("bad character in local part")
    labels = domain.split(".")
    if len(labels) < 2:
        raise ValueError("domain needs a dot")
    for label in labels:
        if label == "":
            raise ValueError("empty domain label")
        if not label.replace("-", "").isalnum():
            raise ValueError("bad domain label")
    tld = labels[len(labels) - 1].lower()
    if tld not in TLDS:
        raise ValueError("unknown TLD")
    return domain
|};
    ]

(* IPv4 via pure-integer bit manipulation: another distinct style. *)
let ip_bits =
  Repolib.Repo.make "netops/ip-bits"
    "IPv4 to 32-bit integer conversion and subnet math"
    ~stars:175
    ~truth:
      [ ("ip_to_u32", [ "ipv4" ]); ("same_subnet", [ "ipv4" ]) ]
    [
      file "ipbits/convert.py"
        {|def ip_to_u32(addr):
    value = 0
    count = 0
    for part in addr.split("."):
        if not part.isdigit():
            raise ValueError("octet not numeric")
        octet = int(part)
        if octet > 255:
            raise ValueError("octet too large")
        value = (value << 8) | octet
        count = count + 1
    if count != 4:
        raise ValueError("need exactly 4 octets")
    return value

def same_subnet(a, b):
    return ip_to_u32(a) >> 8 == ip_to_u32(b) >> 8
|};
    ]

(* A URL splitter in the tuple-returning style. *)
let url_tuple =
  Repolib.Repo.make "webkit/urlsplit"
    "Split URLs into (scheme, host, path) tuples"
    ~stars:67
    ~truth:[ ("urlsplit3", [ "url" ]) ]
    [
      file "urlsplit/split.py"
        {|def urlsplit3(url):
    url = url.strip()
    sep = url.find("://")
    if sep < 0:
        raise ValueError("no scheme")
    scheme = url[:sep].lower()
    if scheme not in ["http", "https", "ftp"]:
        raise ValueError("bad scheme")
    rest = url[sep + 3:]
    slash = rest.find("/")
    if slash < 0:
        host = rest
        path = "/"
    else:
        host = rest[:slash]
        path = rest[slash:]
    if "." not in host or host == "":
        raise ValueError("bad host")
    return (scheme, host, path)
|};
    ]

(* Zipcode with embedded range table per state: a richer variant. *)
let zip_ranges =
  Repolib.Repo.make "geodata/zip-ranges"
    "US zipcode to state using numeric prefix ranges"
    ~stars:94
    ~truth:[ ("state_for_zip", [ "us-zipcode" ]) ]
    [
      file "zipranges/state.py"
        {|RANGES = [[1, 2, "MA"], [28, 29, "SC"], [30, 31, "GA"],
          [32, 34, "FL"], [43, 45, "OH"], [46, 47, "IN"],
          [48, 49, "MI"], [60, 62, "IL"], [63, 65, "MO"],
          [75, 79, "TX"], [80, 81, "CO"], [85, 86, "AZ"],
          [90, 96, "CA"], [97, 97, "OR"], [98, 99, "WA"],
          [10, 14, "NY"], [15, 19, "PA"], [20, 20, "DC"],
          [21, 21, "MD"], [22, 24, "VA"], [27, 27, "NC"],
          [35, 36, "AL"], [37, 38, "TN"], [39, 39, "MS"],
          [40, 42, "KY"], [50, 52, "IA"], [53, 54, "WI"],
          [55, 56, "MN"], [57, 57, "SD"], [58, 58, "ND"],
          [59, 59, "MT"], [66, 67, "KS"], [68, 69, "NE"],
          [70, 71, "LA"], [72, 72, "AR"], [73, 74, "OK"],
          [82, 83, "WY"], [84, 84, "UT"], [87, 88, "NM"],
          [89, 89, "NV"], [3, 3, "NH"], [4, 4, "ME"],
          [5, 5, "VT"], [6, 6, "CT"], [7, 8, "NJ"], [25, 26, "WV"]]

def state_for_zip(code):
    code = code.strip()
    if "-" in code:
        dash = code.find("-")
        plus4 = code[dash + 1:]
        if len(plus4) != 4 or not plus4.isdigit():
            raise ValueError("bad plus-4")
        code = code[:dash]
    if len(code) != 5 or not code.isdigit():
        raise ValueError("zip is 5 digits")
    prefix = int(code[:2])
    for entry in RANGES:
        if prefix >= entry[0] and prefix <= entry[1]:
            return entry[2]
    raise KeyError("unassigned prefix")
|};
    ]

(* IBAN with country-specific BBAN shape checks: richer than mod-97 only. *)
let iban_strict =
  Repolib.Repo.make "bankkit/iban-strict"
    "Strict IBAN checks: length, mod-97 and numeric-only BBAN countries"
    ~stars:103
    ~truth:[ ("strict_iban", [ "iban" ]) ]
    [
      file "ibanstrict/check.py"
        {|LENGTHS = {"DE": 22, "GB": 22, "FR": 27, "ES": 24, "IT": 27,
           "NL": 18, "BE": 16, "CH": 21, "AT": 20, "PT": 25,
           "SE": 24, "NO": 15, "DK": 18, "FI": 18, "PL": 28,
           "IE": 22, "LU": 20}
NUMERIC_BBAN = ["DE", "AT", "BE", "ES", "PT", "SE", "NO", "DK", "FI",
                "PL", "LU"]

def strict_iban(iban):
    iban = iban.replace(" ", "").upper()
    country = iban[:2]
    if country not in LENGTHS:
        return False
    if len(iban) != LENGTHS[country]:
        return False
    if not iban[2:4].isdigit():
        return False
    if country in NUMERIC_BBAN and not iban[4:].isdigit():
        return False
    rem = 0
    for ch in iban[4:] + iban[:4]:
        if ch.isdigit():
            rem = (rem * 10 + ord(ch) - 48) % 97
        elif ch.isupper():
            rem = (rem * 100 + ord(ch) - 55) % 97
        else:
            return False
    return rem == 1
|};
    ]

(* VIN year decoding: intends VINs, with the check digit verified through
   a helper shared at module level. *)
let vin_year =
  Repolib.Repo.make "autoparts/vin-year"
    "Model year decoding from VIN position 10"
    ~stars:41
    ~truth:[ ("model_year", [ "vin" ]) ]
    [
      file "vinyear/year.py"
        {|YEAR_CODES = "ABCDEFGHJKLMNPRSTVWXY123456789"
TRANS = {"A": 1, "B": 2, "C": 3, "D": 4, "E": 5, "F": 6, "G": 7,
         "H": 8, "J": 1, "K": 2, "L": 3, "M": 4, "N": 5, "P": 7,
         "R": 9, "S": 2, "T": 3, "U": 4, "V": 5, "W": 6, "X": 7,
         "Y": 8, "Z": 9}
WTS = [8, 7, 6, 5, 4, 3, 2, 10, 0, 9, 8, 7, 6, 5, 4, 3, 2]

def model_year(vin):
    vin = vin.strip().upper()
    if len(vin) != 17:
        raise ValueError("need 17 characters")
    total = 0
    i = 0
    while i < 17:
        ch = vin[i]
        if ch.isdigit():
            v = ord(ch) - 48
        elif ch in TRANS:
            v = TRANS[ch]
        else:
            raise ValueError("illegal VIN character")
        if i != 8:
            total = total + v * WTS[i]
        i = i + 1
    rem = total % 11
    expected = "X"
    if rem < 10:
        expected = str(rem)
    if vin[8] != expected:
        raise ValueError("check digit mismatch")
    code = vin[9]
    if code not in YEAR_CODES:
        raise ValueError("bad year code")
    base = YEAR_CODES.find(code)
    return 1980 + base
|};
    ]

(* Currency normalizer that converts symbols to ISO codes. *)
let currency_norm =
  Repolib.Repo.make "fintools/price-normalize"
    "Normalize displayed prices to (code, cents) pairs"
    ~stars:52
    ~truth:[ ("normalize_price", [ "currency" ]) ]
    [
      file "pricenorm/norm.py"
        {|CODES = ["USD", "EUR", "GBP", "JPY", "CHF", "CAD", "AUD", "CNY"]

def normalize_price(text):
    text = text.strip()
    code = ""
    if text[0] == "$":
        code = "USD"
        text = text[1:]
    elif text[:3] in CODES:
        code = text[:3]
        text = text[3:].strip()
    elif text[len(text) - 3:] in CODES:
        code = text[len(text) - 3:]
        text = text[:len(text) - 3].strip()
    else:
        raise ValueError("no currency marker")
    whole = text.replace(",", "")
    cents = 0
    dot = whole.find(".")
    if dot >= 0:
        frac = whole[dot + 1:]
        if len(frac) > 2 or not frac.isdigit():
            raise ValueError("bad cents")
        cents = int(frac)
        if len(frac) == 1:
            cents = cents * 10
        whole = whole[:dot]
    if not whole.isdigit():
        raise ValueError("bad amount")
    return [code, int(whole) * 100 + cents]
|};
    ]

(* Country alpha-2 <-> alpha-3 mapping. *)
let country_a3 =
  Repolib.Repo.make "geodata/country-alpha3"
    "ISO 3166 alpha-2 to alpha-3 country code conversion"
    ~stars:59
    ~truth:[ ("to_alpha3", [ "country-code" ]) ]
    [
      file "alpha3/convert.py"
        {|ALPHA3 = {"US": "USA", "GB": "GBR", "DE": "DEU", "FR": "FRA",
          "IT": "ITA", "ES": "ESP", "NL": "NLD", "BE": "BEL",
          "CH": "CHE", "AT": "AUT", "SE": "SWE", "NO": "NOR",
          "DK": "DNK", "FI": "FIN", "PL": "POL", "IE": "IRL",
          "PT": "PRT", "GR": "GRC", "CZ": "CZE", "HU": "HUN",
          "RO": "ROU", "BG": "BGR", "HR": "HRV", "SK": "SVK",
          "CA": "CAN", "MX": "MEX", "BR": "BRA", "AR": "ARG",
          "CL": "CHL", "CO": "COL", "PE": "PER", "JP": "JPN",
          "CN": "CHN", "KR": "KOR", "IN": "IND", "AU": "AUS",
          "NZ": "NZL", "SG": "SGP", "HK": "HKG", "TW": "TWN",
          "TH": "THA", "MY": "MYS", "ID": "IDN", "PH": "PHL",
          "VN": "VNM", "RU": "RUS", "TR": "TUR", "ZA": "ZAF",
          "EG": "EGY", "NG": "NGA", "KE": "KEN", "IL": "ISR",
          "SA": "SAU", "AE": "ARE", "QA": "QAT"}

def to_alpha3(code):
    code = code.strip().upper()
    if code not in ALPHA3:
        raise KeyError("unknown alpha-2 code")
    return ALPHA3[code]
|};
    ]

(* IPv6 expansion to full 8-group form. *)
let ipv6_expand =
  Repolib.Repo.make "netkit/ipv6-expand"
    "Expand compressed IPv6 addresses to canonical form"
    ~stars:77
    ~truth:[ ("expand_ipv6", [ "ipv6" ]) ]
    [
      file "ipv6expand/expand.py"
        {|def expand_ipv6(addr):
    addr = addr.strip().lower()
    if addr.count("::") > 1:
        raise ValueError("multiple :: not allowed")
    if "::" in addr:
        gap = addr.find("::")
        left = addr[:gap]
        right = addr[gap + 2:]
        lg = []
        if left != "":
            lg = left.split(":")
        rg = []
        if right != "":
            rg = right.split(":")
        missing = 8 - len(lg) - len(rg)
        if missing < 1:
            raise ValueError("too many groups")
        groups = lg + ["0"] * missing + rg
    else:
        groups = addr.split(":")
    if len(groups) != 8:
        raise ValueError("need 8 groups")
    out = []
    for group in groups:
        if len(group) < 1 or len(group) > 4:
            raise ValueError("bad group length")
        for ch in group:
            if ch not in "0123456789abcdef":
                raise ValueError("bad hex digit")
        out.append(group.zfill(4))
    return ":".join(out)
|};
    ]

(* Airport distance lookup: another lookup-style function for IATA. *)
let airport_tz =
  Repolib.Repo.make "aviation/airport-timezones"
    "IATA airport code to timezone offset lookup"
    ~stars:36
    ~truth:[ ("tz_offset", [ "airport-code" ]) ]
    [
      file "airporttz/tz.py"
        {|OFFSETS = {"SEA": -8, "SFO": -8, "LAX": -8, "JFK": -5, "ORD": -6,
           "ATL": -5, "DFW": -6, "DEN": -7, "PHX": -7, "IAH": -6,
           "MIA": -5, "BOS": -5, "LGA": -5, "EWR": -5, "MSP": -6,
           "DTW": -5, "PHL": -5, "CLT": -5, "LAS": -8, "MCO": -5,
           "SLC": -7, "BWI": -5, "DCA": -5, "IAD": -5, "SAN": -8,
           "TPA": -5, "PDX": -8, "STL": -6, "MDW": -6, "HNL": -10,
           "LHR": 0, "CDG": 1, "FRA": 1, "AMS": 1, "MAD": 1,
           "FCO": 1, "ZRH": 1, "VIE": 1, "CPH": 1, "ARN": 1,
           "NRT": 9, "HND": 9, "ICN": 9, "PEK": 8, "PVG": 8,
           "HKG": 8, "SIN": 8, "BKK": 7, "SYD": 10, "MEL": 10,
           "YYZ": -5, "YVR": -8, "GRU": -3, "MEX": -6, "DXB": 4,
           "DOH": 3, "IST": 3, "SVO": 3, "DEL": 5, "BOM": 5}

def tz_offset(code):
    code = code.strip().upper()
    if len(code) != 3 or not code.isalpha():
        raise ValueError("IATA codes are 3 letters")
    if code not in OFFSETS:
        raise KeyError("unknown airport")
    return OFFSETS[code]
|};
    ]

(* Stock ticker exchange suffix handling. *)
let ticker_exchange =
  Repolib.Repo.make "marketdata/ticker-exchange"
    "Parse ticker symbols with class and exchange suffixes"
    ~stars:28
    ~truth:[ ("parse_symbol", [ "stock-ticker" ]) ]
    [
      file "tickerx/parse.py"
        {|def parse_symbol(symbol):
    symbol = symbol.strip()
    base = symbol
    suffix = ""
    dot = symbol.find(".")
    if dot >= 0:
        base = symbol[:dot]
        suffix = symbol[dot + 1:]
        if len(suffix) != 1 or not suffix.isupper():
            raise ValueError("bad class suffix")
    if len(base) < 1 or len(base) > 5:
        raise ValueError("symbol length")
    if not base.isupper() or not base.isalpha():
        raise ValueError("symbols are uppercase letters")
    return {"base": base, "class": suffix}
|};
    ]

let repos =
  [
    card_table; dateutil_like; email_mx; ip_bits; url_tuple; zip_ranges;
    iban_strict; vin_year; currency_norm; country_a3; ipv6_expand;
    airport_tz; ticker_exchange;
  ]
