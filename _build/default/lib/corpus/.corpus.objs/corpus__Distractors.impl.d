lib/corpus/distractors.ml: Corpus_util Repolib
