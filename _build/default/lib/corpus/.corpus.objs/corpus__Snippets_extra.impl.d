lib/corpus/snippets_extra.ml: Corpus_util Repolib
