lib/corpus/snippets_geo.ml: Corpus_util Repolib
