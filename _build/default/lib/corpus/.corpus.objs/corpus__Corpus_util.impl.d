lib/corpus/corpus_util.ml: Printf Repolib
