lib/corpus/snippets_datetime.ml: Corpus_util Repolib
