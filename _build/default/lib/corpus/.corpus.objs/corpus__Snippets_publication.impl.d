lib/corpus/snippets_publication.ml: Corpus_util Repolib
