lib/corpus/snippets_science.ml: Corpus_util Repolib
