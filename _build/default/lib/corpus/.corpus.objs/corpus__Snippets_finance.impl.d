lib/corpus/snippets_finance.ml: Corpus_util Repolib
