lib/corpus/snippets_net.ml: Corpus_util Repolib
