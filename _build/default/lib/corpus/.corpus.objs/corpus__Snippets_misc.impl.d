lib/corpus/snippets_misc.ml: Corpus_util Repolib
