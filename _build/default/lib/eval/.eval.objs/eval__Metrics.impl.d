lib/eval/metrics.ml: Hashtbl List
