lib/eval/experiments.ml: Autotype_core Benchmark Corpus Hashtbl List Metrics Minilang Option Random Repolib Semtypes String
