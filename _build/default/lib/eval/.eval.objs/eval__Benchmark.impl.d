lib/eval/benchmark.ml: Autotype_core Corpus Float Hashtbl List Metrics Option Random Repolib Semtypes String Unix
