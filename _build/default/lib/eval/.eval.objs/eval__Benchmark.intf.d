lib/eval/benchmark.mli: Autotype_core Metrics Repolib Semtypes
