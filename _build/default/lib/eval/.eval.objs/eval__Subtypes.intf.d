lib/eval/subtypes.mli: Benchmark Semtypes
