lib/eval/metrics.mli:
