lib/eval/subtypes.ml: Benchmark Hashtbl List Printf Semtypes
