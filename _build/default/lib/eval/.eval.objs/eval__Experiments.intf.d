lib/eval/experiments.mli: Autotype_core Benchmark Semtypes
