(** Sub-type test cases (Section 8.1): a separate test case per format
    of multi-format types (date-time, ISBN, phone, ISSN, credit card),
    plus mixed cases. *)

type case = {
  case_id : string;
  type_id : string;  (** parent registry type *)
  description : string;
  generator : Semtypes.Generators.rng -> string;
}

val cases : case list

val run_case : ?config:Benchmark.config -> case -> Benchmark.type_result
(** Positive examples and the held-out grading set both come from the
    case's own generator. *)

val run_all :
  ?config:Benchmark.config -> unit -> (case * Benchmark.type_result) list
