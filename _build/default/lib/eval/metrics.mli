(** Evaluation metrics of Section 8.1: graded relevance
    rel(F) = I(F)·Q(F), precision@K, NDCG, relative recall with the IR
    pooling methodology, and precision/recall/F1 for column detection. *)

type relevance = {
  intention : bool;  (** I(F): the function intends to process the type *)
  quality : float;  (** Q(F) ∈ [0,1] from held-out unit tests *)
}

val rel : relevance -> float
(** rel(F) = I(F)·Q(F). *)

val quality_score :
  pass_pos:int -> n_pos:int -> reject_neg:int -> n_neg:int -> float
(** Q(F) = ½·pass-rate(P_test) + ½·reject-rate(N_test). *)

val relevant_floor : float

val is_relevant : relevance -> bool
(** rel(F) > {!relevant_floor}. *)

val precision_at_k : relevance list -> int -> float

val ndcg_at_p : relevance list -> int -> float
(** Normalized discounted cumulative gain with graded relevance. *)

val relative_recall :
  pool_k:int ->
  (string * (string * relevance) list) list ->
  (string * float) list
(** Pooled relative recall: the union of relevant items in all methods'
    top-[pool_k] lists is the ground-truth pool. *)

type prf = { tp : int; fp : int; fn : int }

val precision : prf -> float
val recall : prf -> float
val f_score : prf -> float
val mean : float list -> float
