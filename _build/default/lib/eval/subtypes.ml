(** Sub-type test cases (Section 8.1): "Some types like date-time have
    multiple formats/sub-types (e.g., 'Jan 01, 2017' vs. '2017-01-01').
    We create a separate test case for each sub-type, as well as a test
    case with data mixed from different sub-types."

    Each case supplies its own positive-example generator while keeping
    the parent type's search keyword and ground truth, so the benchmark
    machinery applies unchanged. *)

type case = {
  case_id : string;
  type_id : string;  (** parent registry type *)
  description : string;
  generator : Semtypes.Generators.rng -> string;
}

let g = Semtypes.Generators.make_rng

let cases : case list =
  [
    (* date-time sub-types *)
    { case_id = "datetime-iso"; type_id = "datetime";
      description = "ISO dates: 2017-01-31";
      generator = Semtypes.Generators.date_iso };
    { case_id = "datetime-us"; type_id = "datetime";
      description = "US dates: 01/31/2017";
      generator = Semtypes.Generators.date_us };
    { case_id = "datetime-textual"; type_id = "datetime";
      description = "textual dates: Jan 01, 2017";
      generator = Semtypes.Generators.date_textual };
    { case_id = "datetime-mixed"; type_id = "datetime";
      description = "mixed formats with optional times";
      generator = Semtypes.Generators.datetime };
    (* ISBN sub-types *)
    { case_id = "isbn-13-compact"; type_id = "isbn";
      description = "compact ISBN-13: 9784063641561";
      generator = Semtypes.Generators.isbn13 };
    { case_id = "isbn-13-hyphenated"; type_id = "isbn";
      description = "hyphenated ISBN-13: 978-4-06-364156-1";
      generator = Semtypes.Generators.isbn13_hyphenated };
    { case_id = "isbn-10"; type_id = "isbn";
      description = "ISBN-10 with mod-11 check";
      generator = Semtypes.Generators.isbn10 };
    (* phone sub-types *)
    { case_id = "phone-paren"; type_id = "phone";
      description = "(502) 107-2133";
      generator =
        (fun rng ->
          Printf.sprintf "(%d) %d-%s"
            (Semtypes.Generators.int_in rng 201 989)
            (Semtypes.Generators.int_in rng 100 999)
            (Semtypes.Generators.digits rng 4)) };
    { case_id = "phone-dashed"; type_id = "phone";
      description = "502-107-2133";
      generator =
        (fun rng ->
          Printf.sprintf "%d-%d-%s"
            (Semtypes.Generators.int_in rng 201 989)
            (Semtypes.Generators.int_in rng 100 999)
            (Semtypes.Generators.digits rng 4)) };
    { case_id = "phone-mixed"; type_id = "phone";
      description = "mixed US phone formats";
      generator = Semtypes.Generators.phone_us };
    (* ISSN *)
    { case_id = "issn-hyphenated"; type_id = "issn";
      description = "0028-0836"; generator = Semtypes.Generators.issn };
    { case_id = "issn-compact"; type_id = "issn";
      description = "00280836"; generator = Semtypes.Generators.issn_compact };
    (* credit card *)
    { case_id = "card-compact"; type_id = "credit-card";
      description = "4147202263232835";
      generator = Semtypes.Generators.credit_card };
    { case_id = "card-spaced"; type_id = "credit-card";
      description = "4147 2022 6323 2835 (mixed with compact)";
      generator = Semtypes.Generators.credit_card_formatted };
  ]

(** Run one sub-type case through the full benchmark machinery. *)
let run_case ?(config = Benchmark.default_config) (case : case) :
    Benchmark.type_result =
  let ty = Semtypes.Registry.find_exn case.type_id in
  let rng = g (config.Benchmark.seed + Hashtbl.hash case.case_id) in
  let positives =
    Semtypes.Generators.samples rng case.generator config.Benchmark.n_positives
  in
  (* Held-out unit tests must come from the same sub-type distribution. *)
  let held_out = Semtypes.Generators.samples rng case.generator 10 in
  Benchmark.run_type ~config ~positives ~held_out ty

let run_all ?config () : (case * Benchmark.type_result) list =
  List.map (fun c -> (c, run_case ?config c)) cases
