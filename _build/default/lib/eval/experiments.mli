(** Drivers for the individual experiments of Sections 8-9 and the
    appendices.  Each returns plain data; bench/main.ml renders the
    paper-style tables. *)

val popular_types : unit -> Semtypes.Registry.t list
val covered_types : unit -> Semtypes.Registry.t list

val full_benchmark :
  ?config:Benchmark.config ->
  ?types:Semtypes.Registry.t list ->
  unit ->
  Benchmark.type_result list
(** Figure 8 / 9 / 14: the full benchmark over all covered types. *)

val sensitivity_n_examples :
  ?ns:int list -> unit -> (int * Benchmark.type_result list) list
(** Figure 10(a): 10/20/30 positive examples, 20 popular types. *)

val with_noise : seed:int -> fraction:float -> string list -> string list

val sensitivity_noise :
  ?fractions:float list -> unit -> (float * Benchmark.type_result list) list
(** Figure 10(b): corrupting a fraction of the positives. *)

type neg_variant = Hierarchical | Random_negatives | No_negatives

val neg_variant_to_string : neg_variant -> string

val run_with_neg_variant :
  neg_variant -> Semtypes.Registry.t -> Benchmark.type_result

val sensitivity_negatives :
  unit -> (neg_variant * Benchmark.type_result list) list
(** Figure 10(c): hierarchical mutation vs random strings vs none. *)

val keyword_table : (string * string list) list
(** Table 4 / Appendix I: three alternative keywords for 10 types. *)

val sensitivity_keywords :
  unit -> (string * (string * Benchmark.type_result) list) list
(** Figure 12 / Appendix J. *)

val lr_sensitivity :
  ?ns:int list -> unit -> (int * Benchmark.type_result list) list
(** Figure 13 / Appendix K. *)

type coverage_report = {
  n_types : int;
  n_found : int;
  n_no_code : int;
  n_other_language : int;
  n_complex_invocation : int;
  relevant_per_type : (string * int) list;  (** Figure 9 distribution *)
}

val coverage : Benchmark.type_result list -> coverage_report
(** Section 8.2.2. *)

val tde_style_finds : Semtypes.Registry.t -> bool
(** Section 8.3, simulated: does exact-output PBE (True/False outputs)
    find a function for the type? *)

val pbe_comparison : unit -> (string * bool) list

val transformations_for :
  ?positives:string list ->
  Semtypes.Registry.t ->
  (string * string list * Autotype_core.Transform.transformation list) option
(** Table 3 / Appendix B: harvest the richest transformation set among
    the top-5 ranked functions.  Returns (function description,
    positives used, transformations). *)
