(** Evaluation metrics of Section 8.1: precision@K, NDCG, relative
    recall with pooling, and the graded relevance rel(F) = I(F)·Q(F). *)

(** Graded relevance of one ranked function. *)
type relevance = {
  intention : bool;  (** I(F): a human judge says F intends to process T *)
  quality : float;  (** Q(F) ∈ [0,1] from held-out unit tests *)
}

let rel r = if r.intention then r.quality else 0.0

(** Q(F) = ½·(pass rate on held-out positives) + ½·(reject rate on true
    negatives) — the unit-test score of Section 8.1. *)
let quality_score ~pass_pos ~n_pos ~reject_neg ~n_neg =
  let frac a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b in
  (0.5 *. frac pass_pos n_pos) +. (0.5 *. frac reject_neg n_neg)

(** An item is counted as relevant for precision/recall purposes when its
    graded relevance exceeds this floor (intending the type but failing
    most unit tests should not count). *)
let relevant_floor = 0.5

let is_relevant r = rel r > relevant_floor

(** precision@K over one ranked list. *)
let precision_at_k (ranked : relevance list) k =
  let top = List.filteri (fun i _ -> i < k) ranked in
  match top with
  | [] -> 0.0
  | _ ->
    float_of_int (List.length (List.filter is_relevant top))
    /. float_of_int k

(** NDCG@p with graded relevance (Järvelin & Kekäläinen):
    DCG_p = Σ_{i=1..p} rel_i / log2(i + 1), normalized by the ideal DCG. *)
let ndcg_at_p (ranked : relevance list) p =
  let dcg_of rels =
    List.fold_left
      (fun (i, acc) r ->
        (i + 1, acc +. (r /. (log (float_of_int (i + 1)) /. log 2.0))))
      (1, 0.0) rels
    |> snd
  in
  let rels = List.filteri (fun i _ -> i < p) (List.map rel ranked) in
  let ideal =
    List.sort (fun a b -> compare b a) (List.map rel ranked)
    |> List.filteri (fun i _ -> i < p)
  in
  let idcg = dcg_of ideal in
  if idcg = 0.0 then 0.0 else dcg_of rels /. idcg

(** Relative recall with the IR pooling methodology: the union of
    relevant results in all methods' top-k lists is the ground-truth
    pool; each method's recall is its share of the pool.  Items are
    identified by a string key. *)
let relative_recall ~(pool_k : int)
    (per_method : (string * (string * relevance) list) list) :
    (string * float) list =
  let pooled = Hashtbl.create 64 in
  List.iter
    (fun (_method, ranked) ->
      List.filteri (fun i _ -> i < pool_k) ranked
      |> List.iter (fun (key, r) ->
             if is_relevant r then Hashtbl.replace pooled key ()))
    per_method;
  let total = Hashtbl.length pooled in
  List.map
    (fun (m, ranked) ->
      let found =
        List.filteri (fun i _ -> i < pool_k) ranked
        |> List.filter (fun (key, r) -> is_relevant r && Hashtbl.mem pooled key)
        |> List.length
      in
      (m, if total = 0 then 0.0 else float_of_int found /. float_of_int total))
    per_method

(** Precision / recall / F1 for column-type detection (Section 9). *)
type prf = { tp : int; fp : int; fn : int }

let precision prf =
  if prf.tp + prf.fp = 0 then 0.0
  else float_of_int prf.tp /. float_of_int (prf.tp + prf.fp)

let recall prf =
  if prf.tp + prf.fn = 0 then 0.0
  else float_of_int prf.tp /. float_of_int (prf.tp + prf.fn)

let f_score prf =
  let p = precision prf and r = recall prf in
  if p +. r = 0.0 then 0.0 else 2.0 *. p *. r /. (p +. r)

let mean xs =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
