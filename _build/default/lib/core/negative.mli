(** Automatic negative-example generation (Section 6 of the paper):
    inferred alphabets (Definition 5) and the strict mutation hierarchy
    S1 ⊆ S2 ⊆ S3 (Proposition 1). *)

type strategy =
  | S1  (** mutate-preserve-structure: non-punctuation, in-alphabet *)
  | S2  (** mutate-preserve-alphabet: any character, in-alphabet *)
  | S3  (** mutate-random: any character, full alphabet *)

val strategy_to_string : strategy -> string

val is_punctuation : char -> bool

type alphabet = {
  full : char list;  (** Σ(P): every character appearing in P *)
  non_punct : char list;  (** in-alphabet non-punctuation characters *)
}

val infer_alphabet : string list -> alphabet

val sigma_full : char list
(** The full printable alphabet used by S3. *)

val mutate : ?p:float -> Random.State.t -> alphabet -> strategy -> string -> string
(** Mutate one example; each eligible character is replaced with
    probability [p] (default 0.25).  At least one character changes. *)

val generate :
  ?per_positive:int -> ?p:float -> seed:int -> strategy -> string list ->
  string list
(** Generate-N-by-Mutation: [per_positive] (default 8) likely-negative
    mutants per positive example.  Deterministic in [seed]. *)

val random_strings : ?per_positive:int -> seed:int -> string list -> string list
(** The naive random-string baseline of Figure 10(c). *)

val filter_true_negatives : oracle:(string -> bool) -> string list -> string list
(** Drop accidentally-positive mutants using a ground-truth oracle.
    Used only by tests — the pipeline instead budgets for them with θ. *)
