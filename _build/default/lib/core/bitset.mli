(** Compact fixed-width bitsets representing example coverage. *)

type t

val create : int -> t
(** [create width] is the empty set over [0 .. width-1]. *)

val copy : t -> t
val set : t -> int -> unit
val mem : t -> int -> bool
val count : t -> int
val inter : t -> t -> t
val union : t -> t -> t
val union_into : into:t -> t -> unit
val is_empty : t -> bool
val equal : t -> t -> bool

val count_diff : t -> t -> int
(** [count_diff a b] is [|a \ b|]. *)

val to_key : t -> string
(** Stable hashable key for grouping identical coverages. *)
