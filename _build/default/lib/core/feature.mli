(** Featurization of execution traces (Section 5.2 of the paper):
    branches as [bᵢ == True/False] literals, returns abstracted to
    boolean / zero / None classes, exceptions as literals.  Set-based,
    per the paper's choice. *)

type literal =
  | Branch_is of Minilang.Trace.site * bool
  | Return_is of Minilang.Trace.site * Minilang.Trace.ret_abstract
  | Raised of string  (** uncaught exception kind *)

val literal_to_string : literal -> string
val compare_literal : literal -> literal -> int

module Literal_set : Set.S with type elt = literal

type mode = [ `All | `Returns_only ]
(** [`All]: branches + returns + exceptions + the black-box output
    literal (DNF-S feature space).  [`Returns_only]: the RET baseline —
    the function is a black box, only its final output value and
    uncaught exceptions are observable. *)

val blackbox_site : Minilang.Trace.site
(** The site-less pseudo-location of the black-box output literal. *)

val featurize : ?mode:mode -> Minilang.Trace.t -> Literal_set.t
