(** Logistic-regression baseline (Section 8.1, method LR).

    Uses exactly the same binary trace features as DNF-S, trains a
    per-function classifier with gradient descent, and scores the
    function by how well the model separates the positive from the
    generated negative examples (balanced accuracy), mirroring
    "rank functions based on regression scores".  No regularization is
    applied, as discussed in Appendix K. *)

type model = {
  features : Feature.literal array;
  weights : float array;  (** last slot is the bias *)
}

let sigmoid z = 1.0 /. (1.0 +. exp (-.z))

let vectorize features (trace : Feature.Literal_set.t) : float array =
  Array.map
    (fun lit -> if Feature.Literal_set.mem lit trace then 1.0 else 0.0)
    features

let predict model trace =
  let x = vectorize model.features trace in
  let n = Array.length x in
  let z = ref model.weights.(n) in
  for i = 0 to n - 1 do
    z := !z +. (model.weights.(i) *. x.(i))
  done;
  sigmoid !z

let train ?(epochs = 150) ?(lr = 0.5)
    ~(positives : Feature.Literal_set.t list)
    ~(negatives : Feature.Literal_set.t list) () : model =
  let all_literals =
    List.fold_left
      (fun acc t -> Feature.Literal_set.union acc t)
      Feature.Literal_set.empty (positives @ negatives)
  in
  let features = Array.of_list (Feature.Literal_set.elements all_literals) in
  let nf = Array.length features in
  let weights = Array.make (nf + 1) 0.0 in
  let model = { features; weights } in
  let data =
    List.map (fun t -> (vectorize features t, 1.0)) positives
    @ List.map (fun t -> (vectorize features t, 0.0)) negatives
  in
  let n_data = float_of_int (List.length data) in
  for _ = 1 to epochs do
    let grad = Array.make (nf + 1) 0.0 in
    List.iter
      (fun (x, y) ->
        let z = ref weights.(nf) in
        for i = 0 to nf - 1 do
          z := !z +. (weights.(i) *. x.(i))
        done;
        let err = sigmoid !z -. y in
        for i = 0 to nf - 1 do
          grad.(i) <- grad.(i) +. (err *. x.(i))
        done;
        grad.(nf) <- grad.(nf) +. err)
      data;
    for i = 0 to nf do
      weights.(i) <- weights.(i) -. (lr *. grad.(i) /. n_data)
    done
  done;
  model

(** Balanced accuracy of the trained model on its training data — the
    regression score used to rank functions. *)
let separation_score model ~positives ~negatives =
  let frac pred examples =
    match examples with
    | [] -> 0.0
    | _ ->
      float_of_int (List.length (List.filter pred examples))
      /. float_of_int (List.length examples)
  in
  let tpr = frac (fun t -> predict model t >= 0.5) positives in
  let tnr = frac (fun t -> predict model t < 0.5) negatives in
  (tpr +. tnr) /. 2.0
