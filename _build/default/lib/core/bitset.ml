(** Compact fixed-width bitsets used to represent example coverage. *)

type t = { width : int; bits : Bytes.t }

let create width = { width; bits = Bytes.make ((width + 7) / 8) '\000' }

let copy t = { t with bits = Bytes.copy t.bits }

let set t i =
  let b = Bytes.get_uint8 t.bits (i / 8) in
  Bytes.set_uint8 t.bits (i / 8) (b lor (1 lsl (i mod 8)))

let mem t i = Bytes.get_uint8 t.bits (i / 8) land (1 lsl (i mod 8)) <> 0

let count t =
  let n = ref 0 in
  for i = 0 to Bytes.length t.bits - 1 do
    let b = ref (Bytes.get_uint8 t.bits i) in
    while !b <> 0 do
      n := !n + (!b land 1);
      b := !b lsr 1
    done
  done;
  !n

let inter a b =
  let r = create a.width in
  for i = 0 to Bytes.length r.bits - 1 do
    Bytes.set_uint8 r.bits i
      (Bytes.get_uint8 a.bits i land Bytes.get_uint8 b.bits i)
  done;
  r

let union a b =
  let r = create a.width in
  for i = 0 to Bytes.length r.bits - 1 do
    Bytes.set_uint8 r.bits i
      (Bytes.get_uint8 a.bits i lor Bytes.get_uint8 b.bits i)
  done;
  r

let union_into ~into a =
  for i = 0 to Bytes.length into.bits - 1 do
    Bytes.set_uint8 into.bits i
      (Bytes.get_uint8 into.bits i lor Bytes.get_uint8 a.bits i)
  done

let is_empty t = count t = 0

let equal a b = Bytes.equal a.bits b.bits

(** Count of elements in [a] that are not in [b]. *)
let count_diff a b =
  let n = ref 0 in
  for i = 0 to Bytes.length a.bits - 1 do
    let v = Bytes.get_uint8 a.bits i land lnot (Bytes.get_uint8 b.bits i) land 0xff in
    let b = ref v in
    while !b <> 0 do
      n := !n + (!b land 1);
      b := !b lsr 1
    done
  done;
  !n

let to_key t = Bytes.to_string t.bits
