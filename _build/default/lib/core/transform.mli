(** Harvesting semantic transformations (Section 7.1, Appendix B):
    re-run a relevant function on the positives with assignment
    recording, keep the final value of each variable/attribute, filter
    low-entropy, identity and loop-counter columns. *)

type transformation = {
  variable : string;  (** source variable name or "self.attr" *)
  values : (string * string) list;  (** input example → derived value *)
}

val harvest :
  ?max_assign_per_run:int ->
  Repolib.Candidate.t ->
  positives:string list ->
  transformation list

val to_table : string list -> transformation list -> string list list
(** Tabular form (header row first), as in Figure 6's bottom panel. *)
