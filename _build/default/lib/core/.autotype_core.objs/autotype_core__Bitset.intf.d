lib/core/bitset.mli:
