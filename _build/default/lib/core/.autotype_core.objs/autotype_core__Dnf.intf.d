lib/core/dnf.mli: Bitset Feature
