lib/core/synthesis.mli: Dnf Repolib
