lib/core/bitset.ml: Bytes
