lib/core/lr.ml: Array Feature List
