lib/core/dnf.ml: Array Bitset Feature Hashtbl List String
