lib/core/negative.mli: Random
