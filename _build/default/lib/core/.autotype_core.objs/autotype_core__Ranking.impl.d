lib/core/ranking.ml: Dnf Feature Hashtbl List Lr Minilang Option Repolib String
