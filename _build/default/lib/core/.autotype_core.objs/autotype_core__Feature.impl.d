lib/core/feature.ml: List Minilang Printf Set Trace
