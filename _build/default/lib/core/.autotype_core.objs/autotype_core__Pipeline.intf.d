lib/core/pipeline.mli: Dnf Negative Ranking Repolib Synthesis
