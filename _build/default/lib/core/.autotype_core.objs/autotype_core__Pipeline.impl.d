lib/core/pipeline.ml: Dnf List Negative Ranking Repolib Synthesis
