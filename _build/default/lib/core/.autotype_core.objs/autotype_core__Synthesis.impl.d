lib/core/synthesis.ml: Dnf Feature List Minilang Repolib
