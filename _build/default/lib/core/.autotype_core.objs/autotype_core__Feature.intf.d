lib/core/feature.mli: Minilang Set
