lib/core/transform.mli: Repolib
