lib/core/transform.ml: Hashtbl List Minilang Option Repolib String
