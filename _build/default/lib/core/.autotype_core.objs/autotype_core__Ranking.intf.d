lib/core/ranking.mli: Dnf Feature Minilang Repolib
