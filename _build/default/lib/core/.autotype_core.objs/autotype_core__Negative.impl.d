lib/core/negative.ml: Char Fun Hashtbl List Random String
