lib/core/lr.mli: Feature
