(** The end-to-end AutoType pipeline (Figure 6):

    keyword + positive examples
      → code search (Section 4.1)
      → candidate-function analysis (Section 4.2)
      → dynamic negative generation, trying S1 then S2 then S3
        (Section 6, Algorithm 2)
      → Best-k-Concise-DNF-Cover ranking (Section 5.2)
      → synthesized validation functions (Section 5.3). *)

type config = {
  k : int;  (** clause-length cap (k-conciseness); paper uses 3 *)
  theta : float;  (** negative-coverage budget; paper uses 0.3 *)
  top_repos : int;  (** repositories fetched per engine; paper uses 40 *)
  neg_per_positive : int;
  mutation_p : float;
  found_fraction : float;
      (** minimum fraction of P a DNF must cover for the function to
          count as "found" in Algorithm 2's non-empty test *)
  seed : int;
}

let default_config =
  {
    k = 3;
    theta = 0.3;
    top_repos = 40;
    neg_per_positive = 8;
    mutation_p = 0.25;
    found_fraction = 0.85;
    seed = 17;
  }

type outcome = {
  query : string;
  positives : string list;
  strategy_used : Negative.strategy option;
      (** which mutation level finally produced informative negatives *)
  negatives : string list;
  ranked : Ranking.ranked list;  (** DNF-S order *)
  traceds : Ranking.traced list;
      (** raw traces of every candidate against the final negative set;
          reusable by other ranking methods without re-execution *)
  candidates_tried : int;
  repos_searched : int;
}

(** Search + static analysis + executability probing: everything up to
    (but excluding) example-driven ranking. *)
let gather_candidates ~(index : Repolib.Search.index) ~(config : config)
    ~query ~probe () : Repolib.Candidate.t list * int =
  let repos = Repolib.Search.search index ~k:config.top_repos query in
  let candidates =
    List.concat_map Repolib.Analyzer.candidates_of_repo repos
    |> List.filter (fun c -> Repolib.Driver.executable c ~probe)
  in
  (candidates, List.length repos)

let found_enough config (dnf : Dnf.result) =
  dnf.Dnf.clauses <> []
  && float_of_int dnf.Dnf.cov_p
     >= config.found_fraction *. float_of_int (max 1 dnf.Dnf.n_pos)

(** Run the full pipeline.  [negatives_override] forces a fixed negative
    set (used by the Figure 10(c) ablations); otherwise Algorithm 2's
    S1→S2→S3 escalation is applied. *)
let synthesize ?(config = default_config) ?negatives_override
    ~(index : Repolib.Search.index) ~query ~(positives : string list) () :
    outcome =
  match positives with
  | [] ->
    { query; positives; strategy_used = None; negatives = []; ranked = [];
      traceds = []; candidates_tried = 0; repos_searched = 0 }
  | probe :: _ ->
    let candidates, repos_searched =
      gather_candidates ~index ~config ~query ~probe ()
    in
    let trace_with negatives =
      List.map
        (fun c -> Ranking.trace_candidate c ~positives ~negatives)
        candidates
    in
    let rank traceds =
      Ranking.rank_one ~k:config.k ~theta:config.theta Ranking.DNF_S ~query
        traceds
    in
    let finish strategy_used negatives traceds ranked =
      {
        query;
        positives;
        strategy_used;
        negatives;
        ranked;
        traceds;
        candidates_tried = List.length candidates;
        repos_searched;
      }
    in
    (match negatives_override with
     | Some negatives ->
       let traceds = trace_with negatives in
       finish None negatives traceds (rank traceds)
     | None ->
       (* Algorithm 2: escalate S1 → S2 → S3 until some function can
          tell P and N apart. *)
       let rec try_strategies = function
         | [] ->
           (* No strategy produced informative negatives; report the
              last attempt (S3) with whatever ranking it gave. *)
           let negatives =
             Negative.generate ~per_positive:config.neg_per_positive
               ~p:config.mutation_p ~seed:config.seed Negative.S3 positives
           in
           let traceds = trace_with negatives in
           finish None negatives traceds (rank traceds)
         | s :: rest ->
           let negatives =
             Negative.generate ~per_positive:config.neg_per_positive
               ~p:config.mutation_p ~seed:config.seed s positives
           in
           let traceds = trace_with negatives in
           let ranked = rank traceds in
           let informative =
             List.exists (fun r -> found_enough config r.Ranking.dnf) ranked
           in
           if informative then
             finish (Some s) negatives traceds
               (List.filter (fun r -> found_enough config r.Ranking.dnf) ranked)
           else try_strategies rest
       in
       try_strategies [ Negative.S1; Negative.S2; Negative.S3 ])

(** Top-ranked synthesized validation function, if any. *)
let best (o : outcome) : Synthesis.t option =
  match o.ranked with
  | [] -> None
  | r :: _ -> Some (Synthesis.make r.Ranking.traced.Ranking.candidate r.Ranking.dnf)

(** All synthesized functions in rank order. *)
let synthesized (o : outcome) : Synthesis.t list =
  List.map
    (fun r -> Synthesis.make r.Ranking.traced.Ranking.candidate r.Ranking.dnf)
    o.ranked
