(** Harvesting semantic transformations (Section 7.1, Appendix B).

    When relevant functions process values of a type, their intermediate
    variables often hold useful derived values (card brand, date
    components, …).  We re-run the candidate on the positive examples
    with assignment recording enabled, collect the final value of every
    assigned variable/attribute per example, and filter out columns of
    low entropy, identity copies of the input, and loop counters. *)

type transformation = {
  variable : string;  (** source variable or "self.attr" *)
  values : (string * string) list;  (** input example -> derived value *)
}

let distinct_count values =
  List.sort_uniq String.compare (List.map snd values) |> List.length

let harvest ?(max_assign_per_run = 6) (c : Repolib.Candidate.t)
    ~(positives : string list) : transformation list =
  (* var -> (example, final value) in example order *)
  let final : (string, (string * string) list) Hashtbl.t = Hashtbl.create 32 in
  let assign_counts : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let n_runs = List.length positives in
  List.iter
    (fun example ->
      let result = Repolib.Driver.run_safe ~record_assigns:true c example in
      let last : (string, string) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (function
          | Minilang.Trace.Assign (_, name, value) ->
            Hashtbl.replace last name value;
            Hashtbl.replace assign_counts name
              (1 + Option.value ~default:0 (Hashtbl.find_opt assign_counts name))
          | Minilang.Trace.Branch _ | Minilang.Trace.Return _
          | Minilang.Trace.Exception _ -> ())
        result.Minilang.Interp.trace;
      Hashtbl.iter
        (fun name value ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt final name) in
          Hashtbl.replace final name ((example, value) :: prev))
        last)
    positives;
  Hashtbl.fold
    (fun variable values acc ->
      let values = List.rev values in
      let avg_assigns =
        float_of_int (Option.value ~default:0 (Hashtbl.find_opt assign_counts variable))
        /. float_of_int (max 1 n_runs)
      in
      let is_loop_counter =
        avg_assigns > float_of_int max_assign_per_run
        || String.length variable <= 1  (* i, n, ch-style iteration vars *)
      in
      let low_entropy = distinct_count values < 2 in
      let identity = List.for_all (fun (e, v) -> e = v) values in
      let mostly_defined =
        List.length values * 2 >= n_runs  (* present in ≥ half the runs *)
      in
      if is_loop_counter || low_entropy || identity || not mostly_defined then
        acc
      else { variable; values } :: acc)
    final []
  |> List.sort (fun a b -> compare a.variable b.variable)

(** Render transformations as the tabular form of Figure 6 (bottom). *)
let to_table (positives : string list) (ts : transformation list) :
    string list list =
  let header = "input" :: List.map (fun t -> t.variable) ts in
  let rows =
    List.map
      (fun e ->
        e
        :: List.map
             (fun t ->
               match List.assoc_opt e t.values with
               | Some v -> v
               | None -> "-")
             ts)
      positives
  in
  header :: rows
