(** Best-k-Concise-DNF-Cover (Definitions 2-4 and Algorithm 1 of the
    paper).

    Given featurized traces of positive and negative examples, finds a
    DNF over trace literals whose conjunctive clauses have at most [k]
    literals, covering as many positives as possible while covering at
    most a [theta] fraction of negatives.  The exact problem is NP-hard
    (Theorem 4), so a greedy cover is computed. *)

type clause = Feature.literal list
(** A conjunction of literals. *)

type group = {
  representative : Feature.literal;
  members : Feature.literal list;
      (** all literals with identical example coverage *)
  coverage : Bitset.t;
}

type result = {
  clauses : clause list;  (** the concise DNF, representatives only *)
  expanded : clause list;
      (** DNF-E (Appendix G): every representative replaced by the
          conjunction of its whole identical-coverage group *)
  groups : group list;
  cov_p : int;  (** positives covered *)
  cov_n : int;  (** negatives covered (≤ θ·n_neg) *)
  n_pos : int;
  n_neg : int;
}

val clause_to_string : clause -> string

val to_string : result -> string
(** Human-readable DNF, e.g. ["(b6 == True ∧ b16 == True) ∨ …"]. *)

type instance
(** Featurized traces of all examples for one candidate function. *)

val make_instance :
  positives:Feature.Literal_set.t list ->
  negatives:Feature.Literal_set.t list ->
  instance

val build_groups : instance -> group list
(** Partition of the literal space into identical-coverage groups
    (Algorithm 1, line 1). *)

val best_k_concise : ?k:int -> ?theta:float -> instance -> result
(** Greedy Best-k-Concise-DNF-Cover.  Defaults: [k = 3], [theta = 0.3]
    (the paper's settings). *)

val best_complete : ?theta:float -> instance -> result
(** The DNF-complete variant of Definition 3 (the DNF-C baseline):
    clauses are entire positive-trace signatures. *)

val satisfies : clause list -> Feature.Literal_set.t -> bool
(** [satisfies dnf trace] is [∧trace → dnf]: some clause is a subset of
    the trace. *)

val empty_result : n_pos:int -> n_neg:int -> result
