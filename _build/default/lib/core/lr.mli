(** Logistic-regression baseline (Section 8.1, method LR; Appendix K):
    the same binary trace features as DNF-S, trained per function with
    unregularized gradient descent. *)

type model

val vectorize : Feature.literal array -> Feature.Literal_set.t -> float array

val predict : model -> Feature.Literal_set.t -> float
(** Probability that a trace is of a positive example. *)

val train :
  ?epochs:int ->
  ?lr:float ->
  positives:Feature.Literal_set.t list ->
  negatives:Feature.Literal_set.t list ->
  unit ->
  model

val separation_score :
  model ->
  positives:Feature.Literal_set.t list ->
  negatives:Feature.Literal_set.t list ->
  float
(** Balanced accuracy on the training data — the regression score used
    to rank functions. *)
