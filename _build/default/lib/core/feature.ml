(** Featurization of execution traces (Section 5.2).

    Each branch event becomes the binary literal [bᵢ == True/False]; each
    return event becomes a literal over the abstracted value (True/False
    for booleans, 0 / ≠0 for numbers and collection lengths, None /
    ≠None for composites); uncaught exceptions are literals too (the
    paper records them in traces, Example 1).  The set-based model is
    used — order and multiplicity are dropped — which the paper found
    expressive enough while avoiding sparsity. *)

open Minilang

type literal =
  | Branch_is of Trace.site * bool
  | Return_is of Trace.site * Trace.ret_abstract
  | Raised of string  (** uncaught exception kind *)

let literal_to_string = function
  | Branch_is (s, b) ->
    Printf.sprintf "b%s == %s" (Trace.site_to_string s)
      (if b then "True" else "False")
  | Return_is (s, r) ->
    Printf.sprintf "r%s %s" (Trace.site_to_string s)
      (match r with
       | Trace.Rbool true -> "== True"
       | Trace.Rbool false -> "== False"
       | Trace.Rzero -> "== 0"
       | Trace.Rnonzero -> "!= 0"
       | Trace.Rnone -> "is None"
       | Trace.Rnotnone -> "is not None"
       | Trace.Rvoid -> "is void")
  | Raised kind -> Printf.sprintf "raises %s" kind

let compare_literal (a : literal) (b : literal) = compare a b

module Literal_set = Set.Make (struct
  type t = literal

  let compare = compare_literal
end)

(** Which event kinds participate in featurization.  [`All] is the full
    DNF-S/DNF-C feature space; [`Returns_only] is the RET baseline that
    treats functions as black boxes (Section 8.1): only the *final*
    output value abstraction and uncaught exceptions are observable —
    no branch sites, no intermediate returns of callees. *)
type mode = [ `All | `Returns_only ]

let blackbox_site = { Trace.s_file = "<output>"; s_line = 0 }

let featurize ?(mode = `All) (trace : Trace.t) : Literal_set.t =
  let blackbox trace =
    (* Site-less literal for the run's final output value, so that DNFs
       built in `Returns_only` mode evaluate under `All` featurization. *)
    let final_return =
      List.fold_left
        (fun acc ev ->
          match ev with Trace.Return (_, r) -> Some r | _ -> acc)
        None trace
    in
    match final_return with
    | Some r -> Literal_set.singleton (Return_is (blackbox_site, r))
    | None -> Literal_set.empty
  in
  match mode with
  | `All ->
    List.fold_left
      (fun acc ev ->
        match ev with
        | Trace.Branch (site, taken) ->
          Literal_set.add (Branch_is (site, taken)) acc
        | Trace.Return (site, r) -> Literal_set.add (Return_is (site, r)) acc
        | Trace.Exception kind -> Literal_set.add (Raised kind) acc
        | Trace.Assign _ -> acc)
      (blackbox trace) trace
  | `Returns_only ->
    let exceptions =
      List.filter_map
        (function Trace.Exception kind -> Some (Raised kind) | _ -> None)
        trace
    in
    List.fold_left
      (fun acc l -> Literal_set.add l acc)
      (blackbox trace) exceptions
