(** Tests for the ground-truth layer: checksums, validators, generators
    and the 112-type registry. *)

let check = Alcotest.check
let bool_c = Alcotest.bool

(* ------------------------- checksums ------------------------------ *)

let test_luhn () =
  check bool_c "known valid card" true (Semtypes.Checksums.luhn_valid "4111111111111111");
  check bool_c "mutated card" false (Semtypes.Checksums.luhn_valid "4111111111111112");
  check bool_c "amex" true (Semtypes.Checksums.luhn_valid "371449635398431");
  check bool_c "discover" true (Semtypes.Checksums.luhn_valid "6011016011016011");
  check bool_c "non-digit" false (Semtypes.Checksums.luhn_valid "41111x11");
  check bool_c "empty" false (Semtypes.Checksums.luhn_valid "")

let test_luhn_check_digit () =
  (* Appending the computed check digit always yields a Luhn-valid string. *)
  let rng = Semtypes.Generators.make_rng 7 in
  for _ = 1 to 50 do
    let body = Semtypes.Generators.digits rng 15 in
    let d = Semtypes.Checksums.luhn_check_digit body in
    check bool_c "body+check valid" true
      (Semtypes.Checksums.luhn_valid (body ^ string_of_int d))
  done

let test_gs1 () =
  check bool_c "real EAN-13" true (Semtypes.Checksums.ean13_valid "4006381333931");
  check bool_c "bad EAN-13" false (Semtypes.Checksums.ean13_valid "4006381333932");
  check bool_c "real UPC-A" true (Semtypes.Checksums.upca_valid "036000291452");
  check bool_c "real ISBN-13" true (Semtypes.Checksums.isbn13_valid "9784063641561");
  check bool_c "ISBN-13 wrong prefix" false
    (Semtypes.Checksums.isbn13_valid "5784063641566")

let test_isbn10 () =
  check bool_c "known" true (Semtypes.Checksums.isbn10_valid "0306406152");
  check bool_c "X check digit" true (Semtypes.Checksums.isbn10_valid "097522980X");
  check bool_c "bad" false (Semtypes.Checksums.isbn10_valid "0306406153")

let test_issn () =
  check bool_c "nature ISSN" true (Semtypes.Checksums.issn_valid "00280836");
  check bool_c "bad" false (Semtypes.Checksums.issn_valid "00280837")

let test_isin () =
  check bool_c "apple ISIN" true (Semtypes.Checksums.isin_valid "US0378331005");
  check bool_c "bad" false (Semtypes.Checksums.isin_valid "US0378331006");
  check bool_c "lowercase rejected" false
    (Semtypes.Checksums.isin_valid "us0378331005")

let test_vin () =
  check bool_c "known VIN" true (Semtypes.Checksums.vin_valid "1M8GDM9AXKP042788");
  check bool_c "11111111111111111" true
    (Semtypes.Checksums.vin_valid "11111111111111111");
  check bool_c "bad check" false (Semtypes.Checksums.vin_valid "1M8GDM9A1KP042788");
  check bool_c "contains I" false (Semtypes.Checksums.vin_valid "IM8GDM9AXKP042788")

let test_iban () =
  check bool_c "DE example" true
    (Semtypes.Checksums.iban_valid "DE89370400440532013000");
  check bool_c "GB example" true
    (Semtypes.Checksums.iban_valid "GB82WEST12345698765432");
  check bool_c "mutated" false
    (Semtypes.Checksums.iban_valid "DE89370400440532013001");
  check bool_c "wrong length" false
    (Semtypes.Checksums.iban_valid "DE8937040044053201300")

let test_aba () =
  check bool_c "known routing" true (Semtypes.Checksums.aba_valid "111000025");
  check bool_c "bad" false (Semtypes.Checksums.aba_valid "111000026")

let test_cusip () =
  check bool_c "apple CUSIP" true (Semtypes.Checksums.cusip_valid "037833100");
  check bool_c "bad" false (Semtypes.Checksums.cusip_valid "037833101")

let test_sedol () =
  check bool_c "known SEDOL" true (Semtypes.Checksums.sedol_valid "0263494");
  check bool_c "bad" false (Semtypes.Checksums.sedol_valid "0263495")

let test_nhs () =
  check bool_c "known NHS" true (Semtypes.Checksums.nhs_valid "9434765919");
  check bool_c "bad" false (Semtypes.Checksums.nhs_valid "9434765918")

let test_imo () =
  check bool_c "known IMO" true (Semtypes.Validators.imo_number "IMO 9074729");
  check bool_c "bare digits" true (Semtypes.Validators.imo_number "9074729");
  check bool_c "bad" false (Semtypes.Validators.imo_number "IMO 9074728")

let test_orcid () =
  check bool_c "known ORCID" true (Semtypes.Tail.orcid_valid "0000-0002-1825-0097");
  check bool_c "bad" false (Semtypes.Tail.orcid_valid "0000-0002-1825-0098")

let test_mod97 () =
  Alcotest.(check int) "mod97 simple" (123456 mod 97)
    (Semtypes.Checksums.mod97_of_string "123456")

(* ------------------------- validators ----------------------------- *)

let test_ipv4 () =
  let valid = [ "192.168.0.1"; "8.8.8.8"; "255.255.255.255"; "0.0.0.0" ] in
  let invalid = [ "256.1.1.1"; "1.2.3"; "1.2.3.4.5"; "a.b.c.d"; "01.2.3.4"; "7.74.0.0.0" ] in
  List.iter (fun s -> check bool_c s true (Semtypes.Validators.ipv4 s)) valid;
  List.iter (fun s -> check bool_c s false (Semtypes.Validators.ipv4 s)) invalid

let test_ipv6 () =
  check bool_c "full" true
    (Semtypes.Validators.ipv6 "2001:0db8:85a3:0000:0000:8a2e:0370:7334");
  check bool_c "compressed" true (Semtypes.Validators.ipv6 "2001:db8::1");
  check bool_c "paper example" true
    (Semtypes.Validators.ipv6 "4f:45b6:336:d336:e41b:8df4:696:e2");
  check bool_c "too many groups" false
    (Semtypes.Validators.ipv6 "1:2:3:4:5:6:7:8:9");
  check bool_c "bad chars" false (Semtypes.Validators.ipv6 "2001:db8::g1")

let test_email () =
  check bool_c "plain" true (Semtypes.Validators.email "john.doe@example.com");
  check bool_c "plus" true (Semtypes.Validators.email "a+b@x.co.uk");
  check bool_c "no at" false (Semtypes.Validators.email "john.doe.example.com");
  check bool_c "no tld" false (Semtypes.Validators.email "a@b");
  check bool_c "double dot domain ok" false (Semtypes.Validators.email "a@b..com")

let test_url () =
  check bool_c "http" true (Semtypes.Validators.url "http://www.example.com/x");
  check bool_c "https" true (Semtypes.Validators.url "https://a.io");
  check bool_c "no scheme" false (Semtypes.Validators.url "www.example.com");
  check bool_c "no dot" false (Semtypes.Validators.url "http://localhost")

let test_dates () =
  check bool_c "iso" true (Semtypes.Validators.datetime "2017-01-31");
  check bool_c "us" true (Semtypes.Validators.datetime "01/31/2017");
  check bool_c "textual" true (Semtypes.Validators.datetime "Jan 01, 2017");
  check bool_c "textual full" true (Semtypes.Validators.datetime "September 15, 2011");
  check bool_c "with time" true (Semtypes.Validators.datetime "2017-01-31 23:59:00");
  check bool_c "bad month" false (Semtypes.Validators.datetime "2017-13-01");
  check bool_c "bad month name" false (Semtypes.Validators.datetime "Abc 01, 2017");
  check bool_c "feb 30" false (Semtypes.Validators.datetime "2017-02-30");
  check bool_c "leap ok" true (Semtypes.Validators.datetime "2016-02-29");
  check bool_c "non-leap" false (Semtypes.Validators.datetime "2017-02-29");
  check bool_c "temperature range" false (Semtypes.Validators.datetime "4-11")

let test_phone () =
  check bool_c "paren" true (Semtypes.Validators.phone_us "(502) 107-2133");
  check bool_c "dashes" true (Semtypes.Validators.phone_us "502-107-2133");
  check bool_c "bare" true (Semtypes.Validators.phone_us "5021072133");
  check bool_c "too short" false (Semtypes.Validators.phone_us "107-2133");
  check bool_c "letters" false (Semtypes.Validators.phone_us "502-CALL-NOW")

let test_roman () =
  List.iter
    (fun s -> check bool_c s true (Semtypes.Validators.roman_numeral s))
    [ "I"; "IV"; "XIV"; "MCMXCIV"; "MMXXVI"; "CDXLIV" ];
  List.iter
    (fun s -> check bool_c s false (Semtypes.Validators.roman_numeral s))
    [ "IIII"; "VX"; "ABC"; ""; "IXIX"; "MMMM" ]

let test_misc_formats () =
  check bool_c "mac" true (Semtypes.Validators.mac_address "00:1b:44:11:3a:b7");
  check bool_c "mac dash" true (Semtypes.Validators.mac_address "00-1B-44-11-3A-B7");
  check bool_c "mac bad" false (Semtypes.Validators.mac_address "00:1b:44:11:3a");
  check bool_c "hex color" true (Semtypes.Validators.hex_color "#a3f2c1");
  check bool_c "hex short" true (Semtypes.Validators.hex_color "#fff");
  check bool_c "hex bad" false (Semtypes.Validators.hex_color "a3f2c1");
  check bool_c "rgb" true (Semtypes.Validators.rgb_color "rgb(1, 2, 3)");
  check bool_c "rgb range" false (Semtypes.Validators.rgb_color "rgb(256, 2, 3)");
  check bool_c "zip" true (Semtypes.Validators.us_zipcode "98101");
  check bool_c "zip+4" true (Semtypes.Validators.us_zipcode "98101-1234");
  check bool_c "zip bad" false (Semtypes.Validators.us_zipcode "9810");
  check bool_c "guid" true
    (Semtypes.Validators.guid "123e4567-e89b-12d3-a456-426614174000");
  check bool_c "ssn" true (Semtypes.Validators.ssn "123-45-6789");
  check bool_c "ssn 000" false (Semtypes.Validators.ssn "000-45-6789");
  check bool_c "json" true (Semtypes.Validators.json_doc "{\"a\": 1}");
  check bool_c "json unbalanced" false (Semtypes.Validators.json_doc "{\"a\": 1");
  check bool_c "xml" true (Semtypes.Validators.xml_doc "<a><b>1</b></a>");
  check bool_c "xml bad close" false (Semtypes.Validators.xml_doc "<a><b>1</b></c>");
  check bool_c "address" true
    (Semtypes.Validators.mailing_address "459 Euclid Rd, Utica NY 13501");
  check bool_c "address mutated" false
    (Semtypes.Validators.mailing_address "459 Euclid Xq, Utica QQ 13501");
  check bool_c "container" true (Semtypes.Validators.iso6346_container "CSQU3054383");
  check bool_c "nmea" true
    (Semtypes.Validators.nmea0183 "$GPGLL,4916.45,N,12311.12,W,225444,A,*1D")

(* ------------------- registry + generators ------------------------ *)

let test_registry_counts () =
  Alcotest.(check int) "112 types" 112 Semtypes.Registry.count;
  let covered, no_code, other_lang, complex = Semtypes.Registry.coverage_counts () in
  Alcotest.(check int) "84 covered" 84 covered;
  Alcotest.(check int) "28 uncovered" 28 (no_code + other_lang + complex);
  Alcotest.(check int) "12 other-language" 12 other_lang;
  Alcotest.(check int) "4 complex invocation" 4 complex;
  Alcotest.(check int) "20 popular" 20
    (List.length Semtypes.Registry.popular)

let test_registry_unique_ids () =
  let ids = List.map (fun t -> t.Semtypes.Registry.id) Semtypes.Registry.all_types in
  let sorted = List.sort_uniq String.compare ids in
  Alcotest.(check int) "ids unique" (List.length ids) (List.length sorted)

let test_covered_have_ground_truth () =
  List.iter
    (fun t ->
      let open Semtypes.Registry in
      Alcotest.(check bool)
        (t.id ^ " has validator") true
        (Option.is_some t.validator);
      Alcotest.(check bool)
        (t.id ^ " has generator") true
        (Option.is_some t.generator))
    Semtypes.Registry.covered

(** Every covered type's generator output passes its own validator —
    the linchpin of the whole benchmark. *)
let test_generators_agree_with_validators () =
  List.iter
    (fun t ->
      let open Semtypes.Registry in
      match (t.validator, t.generator) with
      | Some validate, Some _gen ->
        let examples = positive_examples ~n:30 ~seed:42 t in
        List.iter
          (fun e ->
            if not (validate e) then
              Alcotest.failf "%s: generated %S fails its validator" t.id e)
          examples
      | _ -> ())
    Semtypes.Registry.covered

let test_generators_deterministic () =
  let t = Semtypes.Registry.find_exn "credit-card" in
  let a = Semtypes.Registry.positive_examples ~n:10 ~seed:1 t in
  let b = Semtypes.Registry.positive_examples ~n:10 ~seed:1 t in
  Alcotest.(check (list string)) "same seed, same examples" a b

(* ----------------------- qcheck properties ------------------------ *)

let prop_luhn_mutation =
  QCheck.Test.make ~count:200 ~name:"single-digit mutation breaks Luhn ~90%"
    QCheck.(pair (int_bound 1000000) (int_bound 15))
    (fun (seed, pos) ->
      let rng = Semtypes.Generators.make_rng seed in
      let card = Semtypes.Generators.credit_card rng in
      let pos = pos mod String.length card in
      let old_d = card.[pos] in
      let new_d = Char.chr (Char.code '0' + ((Char.code old_d - Char.code '0' + 1) mod 10)) in
      let mutated = String.mapi (fun i c -> if i = pos then new_d else c) card in
      (* A different digit in one position always breaks the Luhn sum. *)
      not (Semtypes.Checksums.luhn_valid mutated))

let prop_gs1_check_digit_roundtrip =
  QCheck.Test.make ~count:200 ~name:"gs1 check digit round-trips"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Semtypes.Generators.make_rng seed in
      let body = Semtypes.Generators.digits rng 12 in
      let d = Semtypes.Checksums.gs1_check_digit body in
      Semtypes.Checksums.gs1_valid (body ^ string_of_int d))

let prop_roman_generator_valid =
  QCheck.Test.make ~count:200 ~name:"roman generator always validates"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Semtypes.Generators.make_rng seed in
      Semtypes.Validators.roman_numeral (Semtypes.Generators.roman rng))

let prop_iban_generator_valid =
  QCheck.Test.make ~count:100 ~name:"iban generator always validates"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Semtypes.Generators.make_rng seed in
      Semtypes.Checksums.iban_valid (Semtypes.Generators.iban rng))

let suite =
  [
    ("luhn", `Quick, test_luhn);
    ("luhn check digit", `Quick, test_luhn_check_digit);
    ("gs1 family", `Quick, test_gs1);
    ("isbn10", `Quick, test_isbn10);
    ("issn", `Quick, test_issn);
    ("isin", `Quick, test_isin);
    ("vin", `Quick, test_vin);
    ("iban", `Quick, test_iban);
    ("aba", `Quick, test_aba);
    ("cusip", `Quick, test_cusip);
    ("sedol", `Quick, test_sedol);
    ("nhs", `Quick, test_nhs);
    ("imo", `Quick, test_imo);
    ("orcid", `Quick, test_orcid);
    ("mod97", `Quick, test_mod97);
    ("ipv4", `Quick, test_ipv4);
    ("ipv6", `Quick, test_ipv6);
    ("email", `Quick, test_email);
    ("url", `Quick, test_url);
    ("dates", `Quick, test_dates);
    ("phone", `Quick, test_phone);
    ("roman", `Quick, test_roman);
    ("misc formats", `Quick, test_misc_formats);
    ("registry counts", `Quick, test_registry_counts);
    ("registry unique ids", `Quick, test_registry_unique_ids);
    ("covered types have ground truth", `Quick, test_covered_have_ground_truth);
    ("generators agree with validators", `Quick, test_generators_agree_with_validators);
    ("generators deterministic", `Quick, test_generators_deterministic);
    QCheck_alcotest.to_alcotest prop_luhn_mutation;
    QCheck_alcotest.to_alcotest prop_gs1_check_digit_roundtrip;
    QCheck_alcotest.to_alcotest prop_roman_generator_valid;
    QCheck_alcotest.to_alcotest prop_iban_generator_valid;
  ]
