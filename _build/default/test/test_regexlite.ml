(** Unit and property tests for the regexlite engine. *)

let m pattern s = Regexlite.string_matches pattern s

let test_literals () =
  Alcotest.(check bool) "exact" true (m "abc" "abc");
  Alcotest.(check bool) "prefix not full" false (m "abc" "abcd");
  Alcotest.(check bool) "dot" true (m "a.c" "axc");
  Alcotest.(check bool) "dot no newline skip" false (m "a.c" "ac");
  Alcotest.(check bool) "escaped dot" false (m "a\\.c" "axc");
  Alcotest.(check bool) "escaped dot literal" true (m "a\\.c" "a.c")

let test_classes () =
  Alcotest.(check bool) "digit" true (m "\\d+" "12345");
  Alcotest.(check bool) "digit rejects alpha" false (m "\\d+" "12a45");
  Alcotest.(check bool) "word" true (m "\\w+" "ab_9");
  Alcotest.(check bool) "space" true (m "a\\sb" "a b");
  Alcotest.(check bool) "range" true (m "[a-f]+" "cafe");
  Alcotest.(check bool) "range rejects" false (m "[a-f]+" "cage");
  Alcotest.(check bool) "negated" true (m "[^0-9]+" "abc");
  Alcotest.(check bool) "negated rejects" false (m "[^0-9]+" "ab1");
  Alcotest.(check bool) "class with dash last" true (m "[a-c-]+" "a-b");
  Alcotest.(check bool) "class escape" true (m "[\\d.]+" "1.2")

let test_quantifiers () =
  Alcotest.(check bool) "star empty" true (m "a*" "");
  Alcotest.(check bool) "star many" true (m "a*" "aaaa");
  Alcotest.(check bool) "plus needs one" false (m "a+" "");
  Alcotest.(check bool) "opt present" true (m "ab?c" "abc");
  Alcotest.(check bool) "opt absent" true (m "ab?c" "ac");
  Alcotest.(check bool) "exact count" true (m "a{3}" "aaa");
  Alcotest.(check bool) "exact count rejects" false (m "a{3}" "aa");
  Alcotest.(check bool) "range count" true (m "a{2,4}" "aaa");
  Alcotest.(check bool) "range count hi" false (m "a{2,4}" "aaaaa");
  Alcotest.(check bool) "open range" true (m "a{2,}" "aaaaaa");
  Alcotest.(check bool) "group star" true (m "(ab)+" "ababab");
  Alcotest.(check bool) "group star partial" false (m "(ab)+" "ababa")

let test_alternation () =
  Alcotest.(check bool) "alt left" true (m "cat|dog" "cat");
  Alcotest.(check bool) "alt right" true (m "cat|dog" "dog");
  Alcotest.(check bool) "alt neither" false (m "cat|dog" "cow");
  Alcotest.(check bool) "nested" true (m "a(b|c)d" "acd");
  Alcotest.(check bool) "anchored alt" true (m "^(ab|cd)$" "cd")

let test_realistic_patterns () =
  let ipv4 =
    "^(25[0-5]|2[0-4][0-9]|1[0-9][0-9]|[1-9]?[0-9])(\\.(25[0-5]|2[0-4][0-9]|1[0-9][0-9]|[1-9]?[0-9])){3}$"
  in
  Alcotest.(check bool) "ipv4 ok" true (m ipv4 "192.168.0.1");
  Alcotest.(check bool) "ipv4 256" false (m ipv4 "256.1.1.1");
  Alcotest.(check bool) "ipv4 three" false (m ipv4 "1.2.3");
  let email = "^[a-zA-Z0-9._%+-]+@[a-zA-Z0-9.-]+\\.[a-zA-Z]{2,}$" in
  Alcotest.(check bool) "email ok" true (m email "a.b@x.co.uk");
  Alcotest.(check bool) "email bad" false (m email "a@@b.com");
  let ssn = "^[0-9]{3}-[0-9]{2}-[0-9]{4}$" in
  Alcotest.(check bool) "ssn" true (m ssn "123-45-6789");
  Alcotest.(check bool) "ssn short" false (m ssn "123-45-678")

let test_search_and_prefix () =
  let re = Regexlite.parse "\\d+" in
  (match Regexlite.search re "ab123cd" with
   | Some (2, 5) -> ()
   | Some (i, j) -> Alcotest.failf "search found (%d, %d)" i j
   | None -> Alcotest.fail "search failed");
  (match Regexlite.match_prefix re "12ab" with
   | Some 2 -> ()
   | _ -> Alcotest.fail "prefix match");
  match Regexlite.match_prefix re "ab12" with
  | None -> ()
  | Some _ -> Alcotest.fail "prefix must anchor at 0"

let test_parse_errors () =
  List.iter
    (fun p ->
      match Regexlite.parse p with
      | _ -> Alcotest.failf "expected parse error for %S" p
      | exception Regexlite.Parse_error _ -> ())
    [ "a{3"; "[abc"; "(ab"; "*a"; "a{4,2}"; "a\\" ]

let test_fuel_bound () =
  (* Catastrophic backtracking is bounded, not hanging. *)
  let re = Regexlite.parse "(a+)+b" in
  let s = String.make 40 'a' ^ "c" in
  Alcotest.(check bool) "pathological input returns" false
    (Regexlite.full_match re s)

(* Property: a literal string always matches itself once special
   characters are escaped. *)
let prop_escaped_self_match =
  QCheck.Test.make ~count:200 ~name:"escaped literal matches itself"
    QCheck.(string_of_size (QCheck.Gen.int_range 1 15))
    (fun s ->
      let escaped =
        String.to_seq s
        |> Seq.map (fun c ->
               if
                 (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
                 || (c >= '0' && c <= '9')
               then String.make 1 c
               else if Char.code c >= 32 && Char.code c < 127 then
                 "\\" ^ String.make 1 c
               else "x")
        |> List.of_seq |> String.concat ""
      in
      let s =
        String.map (fun c -> if Char.code c < 32 || Char.code c >= 127 then 'x' else c) s
      in
      m escaped s)

let prop_digit_class =
  QCheck.Test.make ~count:200 ~name:"\\d{n} matches exactly n digits"
    QCheck.(int_range 1 12)
    (fun n ->
      let digits = String.init n (fun i -> Char.chr (Char.code '0' + (i mod 10))) in
      m (Printf.sprintf "\\d{%d}" n) digits
      && (not (m (Printf.sprintf "\\d{%d}" n) (digits ^ "1"))))

let suite =
  [
    ("literals", `Quick, test_literals);
    ("character classes", `Quick, test_classes);
    ("quantifiers", `Quick, test_quantifiers);
    ("alternation", `Quick, test_alternation);
    ("realistic patterns", `Quick, test_realistic_patterns);
    ("search and prefix", `Quick, test_search_and_prefix);
    ("parse errors", `Quick, test_parse_errors);
    ("fuel bound", `Quick, test_fuel_bound);
    QCheck_alcotest.to_alcotest prop_escaped_self_match;
    QCheck_alcotest.to_alcotest prop_digit_class;
  ]
