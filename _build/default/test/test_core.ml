(** Unit and property tests for the AutoType core algorithms:
    featurization, negative generation (S1/S2/S3), the greedy
    Best-k-Concise-DNF-Cover, bitsets and the LR baseline. *)

module F = Autotype_core.Feature
module N = Autotype_core.Negative
module D = Autotype_core.Dnf
module B = Autotype_core.Bitset

let site line = { Minilang.Trace.s_file = "t.py"; s_line = line }

let branch line taken = Minilang.Trace.Branch (site line, taken)
let ret line v = Minilang.Trace.Return (site line, v)

(* ----------------------------- bitset ----------------------------- *)

let test_bitset () =
  let b = B.create 20 in
  B.set b 3;
  B.set b 17;
  Alcotest.(check bool) "mem" true (B.mem b 3);
  Alcotest.(check bool) "not mem" false (B.mem b 4);
  Alcotest.(check int) "count" 2 (B.count b);
  let c = B.create 20 in
  B.set c 3;
  B.set c 5;
  Alcotest.(check int) "inter" 1 (B.count (B.inter b c));
  Alcotest.(check int) "union" 3 (B.count (B.union b c));
  Alcotest.(check int) "diff" 1 (B.count_diff b c);
  Alcotest.(check bool) "equal self" true (B.equal b (B.copy b))

let prop_bitset_union_count =
  QCheck.Test.make ~count:200 ~name:"bitset |A∪B| = |A| + |B| - |A∩B|"
    QCheck.(pair (list_of_size (QCheck.Gen.int_bound 30) (int_bound 63))
              (list_of_size (QCheck.Gen.int_bound 30) (int_bound 63)))
    (fun (xs, ys) ->
      let a = B.create 64 and b = B.create 64 in
      List.iter (B.set a) xs;
      List.iter (B.set b) ys;
      B.count (B.union a b) = B.count a + B.count b - B.count (B.inter a b))

(* -------------------------- featurization ------------------------- *)

let test_featurize () =
  let trace =
    [ branch 3 true; branch 3 true (* duplicate collapses *); branch 5 false;
      ret 7 (Minilang.Trace.Rbool true) ]
  in
  let lits = F.featurize trace in
  (* 3 trace literals + 1 black-box output literal. *)
  Alcotest.(check int) "set size" 4 (F.Literal_set.cardinal lits);
  Alcotest.(check bool) "has branch" true
    (F.Literal_set.mem (F.Branch_is (site 3, true)) lits);
  Alcotest.(check bool) "blackbox present" true
    (F.Literal_set.mem
       (F.Return_is (F.blackbox_site, Minilang.Trace.Rbool true))
       lits)

let test_featurize_returns_only () =
  let trace =
    [ branch 3 true; ret 4 (Minilang.Trace.Rnonzero);
      ret 9 (Minilang.Trace.Rbool false) ]
  in
  let lits = F.featurize ~mode:`Returns_only trace in
  (* Black boxes see only the final output value, not branch sites or
     inner returns. *)
  Alcotest.(check int) "one literal" 1 (F.Literal_set.cardinal lits);
  Alcotest.(check bool) "final value" true
    (F.Literal_set.mem
       (F.Return_is (F.blackbox_site, Minilang.Trace.Rbool false))
       lits)

(* ------------------------ negative generation --------------------- *)

let test_alphabet_inference () =
  (* Example 5 from the paper. *)
  let alpha = N.infer_alphabet [ "192.168.0.1"; "10.0.0.7" ] in
  Alcotest.(check bool) "dot is in alphabet" true
    (List.mem '.' alpha.N.full);
  Alcotest.(check bool) "dot is punctuation" false
    (List.mem '.' alpha.N.non_punct);
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "%c in non-punct" c)
        true
        (List.mem c alpha.N.non_punct))
    [ '0'; '1'; '9' ]

let test_s1_preserves_structure () =
  let positives = [ "192.168.001.100"; "10.20.30.40" ] in
  let negs = N.generate ~per_positive:20 ~seed:3 N.S1 positives in
  List.iter
    (fun n ->
      (* Punctuation positions unchanged: same number of dots. *)
      let dots s =
        String.fold_left (fun acc c -> if c = '.' then acc + 1 else acc) 0 s
      in
      Alcotest.(check bool) "dots preserved" true
        (dots n = 3))
    negs

let test_s2_mutates_punctuation () =
  let positives = List.init 10 (fun i -> Printf.sprintf "%d92.168.0.%d" i i) in
  let negs = N.generate ~per_positive:40 ~seed:3 ~p:0.4 N.S2 positives in
  let some_punct_changed =
    List.exists
      (fun n ->
        String.fold_left (fun acc c -> if c = '.' then acc + 1 else acc) 0 n
        <> 3)
      negs
  in
  Alcotest.(check bool) "S2 sometimes breaks structure" true some_punct_changed;
  (* S2 stays in-alphabet. *)
  let alpha = N.infer_alphabet positives in
  List.iter
    (fun n ->
      String.iter
        (fun c ->
          if not (List.mem c alpha.N.full) then
            Alcotest.failf "S2 introduced out-of-alphabet %C in %S" c n)
        n)
    negs

let test_s3_leaves_alphabet () =
  let positives = [ "ACGTACGTACGT"; "TTGGCCAATTGG" ] in
  let negs = N.generate ~per_positive:50 ~seed:9 ~p:0.5 N.S3 positives in
  let escaped =
    List.exists
      (fun n ->
        String.exists (fun c -> not (String.contains "ACGT" c)) n)
      negs
  in
  Alcotest.(check bool) "S3 escapes the inferred alphabet" true escaped

let test_mutants_differ () =
  let positives = [ "4111111111111111" ] in
  List.iter
    (fun strategy ->
      let negs = N.generate ~per_positive:30 ~seed:1 strategy positives in
      List.iter
        (fun n ->
          if n = "4111111111111111" then
            Alcotest.failf "%s produced an unchanged mutant"
              (N.strategy_to_string strategy))
        negs)
    [ N.S1; N.S2; N.S3 ]

(* Proposition 1: the mutation spaces are ordered S1 ⊆ S2 ⊆ S3.  We test
   the observable consequence: every character S1 can produce at a
   position, S2 can too, and likewise S2 ⊆ S3. *)
let prop_mutation_hierarchy =
  QCheck.Test.make ~count:100 ~name:"S1 ⊆ S2 ⊆ S3 character pools"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Semtypes.Generators.make_rng seed in
      let positives =
        List.init 5 (fun _ -> Semtypes.Generators.ipv4 rng)
      in
      let alpha = N.infer_alphabet positives in
      (* S1 pool: in-alphabet non-punctuation; S2 pool: in-alphabet; S3
         pool: full printable set. *)
      List.for_all (fun c -> List.mem c alpha.N.full) alpha.N.non_punct
      && List.for_all (fun c -> List.mem c N.sigma_full) alpha.N.full)

(* ------------------------------ DNF -------------------------------- *)

let lits_of_list xs = F.Literal_set.of_list xs

let test_dnf_perfect_separation () =
  (* Positives take branch 6 or 9 plus 16; negatives miss 16 — the
     credit-card example of Section 5.2. *)
  let b6 = F.Branch_is (site 6, true)
  and b6f = F.Branch_is (site 6, false)
  and b9 = F.Branch_is (site 9, true)
  and b16 = F.Branch_is (site 16, true)
  and b16f = F.Branch_is (site 16, false) in
  let positives =
    [ lits_of_list [ b6; b16 ]; lits_of_list [ b6f; b9; b16 ];
      lits_of_list [ b6; b16 ] ]
  in
  let negatives =
    [ lits_of_list [ b6; b16f ]; lits_of_list [ b6f; b9; b16f ];
      lits_of_list [ F.Raised "ValueError" ] ]
  in
  let inst = D.make_instance ~positives ~negatives in
  let r = D.best_k_concise ~k:2 ~theta:0.0 inst in
  Alcotest.(check int) "covers all positives" 3 r.D.cov_p;
  Alcotest.(check int) "covers no negatives" 0 r.D.cov_n;
  Alcotest.(check bool) "nonempty dnf" true (r.D.clauses <> []);
  (* The synthesized DNF accepts exactly the positive traces. *)
  List.iter
    (fun t -> Alcotest.(check bool) "accepts positive" true (D.satisfies r.D.clauses t))
    positives;
  List.iter
    (fun t -> Alcotest.(check bool) "rejects negative" false (D.satisfies r.D.clauses t))
    negatives

let test_dnf_theta_budget () =
  (* One literal covers all P but also 2 of 4 N; with θ=0.25 (budget 1)
     it is inadmissible, with θ=0.5 (budget 2) it is chosen. *)
  let l = F.Branch_is (site 1, true) in
  let marker i = F.Branch_is (site (100 + i), true) in
  let positives = List.init 3 (fun i -> lits_of_list [ l; marker i ]) in
  let negatives =
    [ lits_of_list [ l; marker 50 ]; lits_of_list [ l; marker 51 ];
      lits_of_list [ marker 52 ]; lits_of_list [ marker 53 ] ]
  in
  let inst = D.make_instance ~positives ~negatives in
  let strict = D.best_k_concise ~k:1 ~theta:0.25 inst in
  Alcotest.(check bool) "strict budget limits coverage" true
    (strict.D.cov_n <= 1);
  let loose = D.best_k_concise ~k:1 ~theta:0.5 inst in
  Alcotest.(check int) "loose budget covers all P" 3 loose.D.cov_p

let test_dnf_k_conciseness () =
  (* Separation requires a conjunction of two literals; k=1 fails,
     k=2 succeeds. *)
  let a = F.Branch_is (site 1, true) and b = F.Branch_is (site 2, true) in
  let positives = [ lits_of_list [ a; b ] ] in
  let negatives = [ lits_of_list [ a ]; lits_of_list [ b ] ] in
  let inst = D.make_instance ~positives ~negatives in
  let k1 = D.best_k_concise ~k:1 ~theta:0.0 inst in
  Alcotest.(check int) "k=1 cannot separate" 0 k1.D.cov_p;
  let k2 = D.best_k_concise ~k:2 ~theta:0.0 inst in
  Alcotest.(check int) "k=2 separates" 1 k2.D.cov_p;
  (match k2.D.clauses with
   | [ clause ] -> Alcotest.(check int) "clause has 2 literals" 2 (List.length clause)
   | _ -> Alcotest.fail "expected one clause")

let test_dnf_group_merging () =
  (* Redundant literals with identical coverage merge into one group, and
     DNF-E expands the representative back to the full group. *)
  let a = F.Branch_is (site 1, true)
  and a' = F.Branch_is (site 2, true)  (* same coverage as a *)
  and noise = F.Branch_is (site 9, true) in
  let positives = [ lits_of_list [ a; a' ]; lits_of_list [ a; a' ] ] in
  let negatives = [ lits_of_list [ noise ] ] in
  let inst = D.make_instance ~positives ~negatives in
  let r = D.best_k_concise ~k:1 ~theta:0.0 inst in
  (match r.D.clauses with
   | [ [ _single ] ] -> ()
   | _ -> Alcotest.fail "concise DNF uses one representative");
  match r.D.expanded with
  | [ expanded_clause ] ->
    Alcotest.(check int) "DNF-E expands the group" 2
      (List.length expanded_clause)
  | _ -> Alcotest.fail "expected one expanded clause"

let test_dnf_empty_inputs () =
  let inst = D.make_instance ~positives:[] ~negatives:[] in
  let r = D.best_k_concise inst in
  Alcotest.(check bool) "empty instance, empty dnf" true (r.D.clauses = [])

let test_dnf_complete_variant () =
  let a = F.Branch_is (site 1, true) and b = F.Branch_is (site 2, true) in
  let positives = [ lits_of_list [ a; b ]; lits_of_list [ a ] ] in
  let negatives = [ lits_of_list [ b ] ] in
  let inst = D.make_instance ~positives ~negatives in
  let r = D.best_complete ~theta:0.0 inst in
  Alcotest.(check int) "complete covers both positives" 2 r.D.cov_p;
  Alcotest.(check int) "complete covers no negatives" 0 r.D.cov_n

(* Soundness property: the greedy cover never exceeds the θ budget, and
   its reported coverage matches recomputation from the clauses. *)
let prop_dnf_budget_sound =
  QCheck.Test.make ~count:100 ~name:"greedy DNF respects the θ budget"
    QCheck.(triple (int_bound 10_000) (int_range 1 3) (int_bound 100))
    (fun (seed, k, theta_pct) ->
      let theta = float_of_int theta_pct /. 100.0 in
      let rng = Random.State.make [| seed |] in
      let random_trace () =
        lits_of_list
          (List.filter_map
             (fun line ->
               if Random.State.bool rng then
                 Some (F.Branch_is (site line, Random.State.bool rng))
               else None)
             [ 1; 2; 3; 4; 5 ])
      in
      let positives = List.init 8 (fun _ -> random_trace ()) in
      let negatives = List.init 12 (fun _ -> random_trace ()) in
      let inst = D.make_instance ~positives ~negatives in
      let r = D.best_k_concise ~k ~theta inst in
      let budget = int_of_float (theta *. 12.0) in
      (* Recompute coverage from the produced clauses. *)
      let cov_p =
        List.length (List.filter (D.satisfies r.D.clauses) positives)
      in
      let cov_n =
        List.length (List.filter (D.satisfies r.D.clauses) negatives)
      in
      r.D.cov_n <= budget && cov_p >= r.D.cov_p && cov_n = r.D.cov_n)

(* Clause length property. *)
let prop_dnf_k_bound =
  QCheck.Test.make ~count:100 ~name:"clauses never exceed k literals"
    QCheck.(pair (int_bound 10_000) (int_range 1 3))
    (fun (seed, k) ->
      let rng = Random.State.make [| seed |] in
      let random_trace () =
        lits_of_list
          (List.filter_map
             (fun line ->
               if Random.State.bool rng then
                 Some (F.Branch_is (site line, Random.State.bool rng))
               else None)
             [ 1; 2; 3; 4; 5; 6 ])
      in
      let inst =
        D.make_instance
          ~positives:(List.init 6 (fun _ -> random_trace ()))
          ~negatives:(List.init 6 (fun _ -> random_trace ()))
      in
      let r = D.best_k_concise ~k ~theta:0.3 inst in
      List.for_all (fun c -> List.length c <= k) r.D.clauses)

(* ------------------------------- LR -------------------------------- *)

let test_lr_separates () =
  let a = F.Branch_is (site 1, true) and b = F.Branch_is (site 2, true) in
  let positives = List.init 10 (fun _ -> lits_of_list [ a ]) in
  let negatives = List.init 10 (fun _ -> lits_of_list [ b ]) in
  let model = Autotype_core.Lr.train ~positives ~negatives () in
  let score = Autotype_core.Lr.separation_score model ~positives ~negatives in
  Alcotest.(check bool) "separable data scores 1.0" true (score > 0.99)

let test_lr_chance_on_identical () =
  let a = F.Branch_is (site 1, true) in
  let positives = List.init 10 (fun _ -> lits_of_list [ a ]) in
  let negatives = List.init 10 (fun _ -> lits_of_list [ a ]) in
  let model = Autotype_core.Lr.train ~positives ~negatives () in
  let score = Autotype_core.Lr.separation_score model ~positives ~negatives in
  Alcotest.(check bool) "identical traces score 0.5" true
    (score > 0.45 && score < 0.55)

let suite =
  [
    ("bitset", `Quick, test_bitset);
    QCheck_alcotest.to_alcotest prop_bitset_union_count;
    ("featurize", `Quick, test_featurize);
    ("featurize returns-only (black box)", `Quick, test_featurize_returns_only);
    ("alphabet inference", `Quick, test_alphabet_inference);
    ("S1 preserves structure", `Quick, test_s1_preserves_structure);
    ("S2 mutates punctuation in-alphabet", `Quick, test_s2_mutates_punctuation);
    ("S3 escapes the alphabet", `Quick, test_s3_leaves_alphabet);
    ("mutants differ from source", `Quick, test_mutants_differ);
    QCheck_alcotest.to_alcotest prop_mutation_hierarchy;
    ("dnf: perfect separation", `Quick, test_dnf_perfect_separation);
    ("dnf: theta budget", `Quick, test_dnf_theta_budget);
    ("dnf: k-conciseness", `Quick, test_dnf_k_conciseness);
    ("dnf: group merging and DNF-E", `Quick, test_dnf_group_merging);
    ("dnf: empty inputs", `Quick, test_dnf_empty_inputs);
    ("dnf: complete variant", `Quick, test_dnf_complete_variant);
    QCheck_alcotest.to_alcotest prop_dnf_budget_sound;
    QCheck_alcotest.to_alcotest prop_dnf_k_bound;
    ("lr separates separable data", `Quick, test_lr_separates);
    ("lr chance on identical traces", `Quick, test_lr_chance_on_identical);
  ]
