test/main.mli:
