test/test_minilang.ml: Alcotest Ast Interp Lexer List Minilang Option Parser Printf QCheck QCheck_alcotest Trace Value
