test/test_repolib.ml: Alcotest List Minilang Repolib
