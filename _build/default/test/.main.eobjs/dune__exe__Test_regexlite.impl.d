test/test_regexlite.ml: Alcotest Char List Printf QCheck QCheck_alcotest Regexlite Seq String
