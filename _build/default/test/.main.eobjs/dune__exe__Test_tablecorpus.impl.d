test/test_tablecorpus.ml: Alcotest Eval List Semtypes Tablecorpus
