test/test_pipeline.ml: Alcotest Autotype_core Corpus List Printf Repolib Semtypes String
