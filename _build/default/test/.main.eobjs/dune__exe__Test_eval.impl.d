test/test_eval.ml: Alcotest Autotype_core Eval Float List Option QCheck QCheck_alcotest Semtypes
