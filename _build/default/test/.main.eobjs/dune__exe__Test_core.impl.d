test/test_core.ml: Alcotest Autotype_core List Minilang Printf QCheck QCheck_alcotest Random Semtypes String
