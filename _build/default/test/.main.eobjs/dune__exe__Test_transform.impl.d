test/test_transform.ml: Alcotest Autotype_core Char Corpus List Repolib Semtypes String
