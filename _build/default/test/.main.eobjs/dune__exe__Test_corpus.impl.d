test/test_corpus.ml: Alcotest Corpus Hashtbl List Minilang Repolib Semtypes String
