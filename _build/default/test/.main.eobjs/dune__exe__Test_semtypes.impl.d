test/test_semtypes.ml: Alcotest Char List Option QCheck QCheck_alcotest Semtypes String
