(** Tests for semantic-transformation harvesting (Section 7.1) and the
    synthesized-validator layer (Section 5.3). *)

let find_candidate func_name =
  List.find
    (fun c -> c.Repolib.Candidate.func_name = func_name)
    (Corpus.all_candidates ())

let test_harvest_card_brand () =
  let c = find_candidate "CreditCard.read_from_number" in
  let rng = Semtypes.Generators.make_rng 5 in
  let positives = List.init 6 (fun _ -> Semtypes.Generators.credit_card rng) in
  let ts = Autotype_core.Transform.harvest c ~positives in
  let vars = List.map (fun t -> t.Autotype_core.Transform.variable) ts in
  Alcotest.(check bool) "card brand harvested" true
    (List.mem "self.card_brand" vars);
  Alcotest.(check bool) "issuer bank harvested" true
    (List.mem "self.issuer_bank" vars);
  (* Brand values are real brand names. *)
  let brand = List.find (fun t -> t.Autotype_core.Transform.variable = "self.card_brand") ts in
  List.iter
    (fun (_, v) ->
      if not (List.mem v [ "Visa"; "Mastercard"; "Amex"; "Discover"; "" ]) then
        Alcotest.failf "unexpected brand %S" v)
    brand.Autotype_core.Transform.values

let test_harvest_filters () =
  (* Low-entropy and identity columns are dropped. *)
  let repo =
    Repolib.Repo.make "t/transform" "transform filters"
      [
        { Repolib.Repo.path = "tf/mod.py";
          source =
            {|
def process(s):
    constant = "always the same"
    echo = s
    derived = len(s)
    return derived
|} };
      ]
  in
  let c = List.hd (Repolib.Analyzer.candidates_of_repo repo) in
  let positives = [ "alpha"; "bravo!"; "charlie77" ] in
  let ts = Autotype_core.Transform.harvest c ~positives in
  let vars = List.map (fun t -> t.Autotype_core.Transform.variable) ts in
  Alcotest.(check bool) "constant dropped" false (List.mem "constant" vars);
  Alcotest.(check bool) "identity dropped" false (List.mem "echo" vars);
  Alcotest.(check bool) "derived kept" true (List.mem "derived" vars)

let test_to_table_shape () =
  let ts =
    [ { Autotype_core.Transform.variable = "x";
        values = [ ("a", "1"); ("b", "2") ] } ]
  in
  match Autotype_core.Transform.to_table [ "a"; "b" ] ts with
  | [ header; row_a; row_b ] ->
    Alcotest.(check (list string)) "header" [ "input"; "x" ] header;
    Alcotest.(check (list string)) "row a" [ "a"; "1" ] row_a;
    Alcotest.(check (list string)) "row b" [ "b"; "2" ] row_b
  | _ -> Alcotest.fail "table shape"

let test_synthesized_validator_rejects_kinds () =
  (* A synthesized credit-card validator rejects other numeric types. *)
  let ty = Semtypes.Registry.find_exn "credit-card" in
  let positives = Semtypes.Registry.positive_examples ~n:20 ~seed:11 ty in
  let outcome =
    Autotype_core.Pipeline.synthesize ~index:(Corpus.search_index ())
      ~query:"credit card" ~positives ()
  in
  match Autotype_core.Pipeline.best outcome with
  | None -> Alcotest.fail "no card validator"
  | Some syn ->
    let rng = Semtypes.Generators.make_rng 9 in
    (* 16-digit strings failing Luhn: rejected. *)
    for _ = 1 to 10 do
      let bad =
        let c = Semtypes.Generators.credit_card rng in
        (* Flip the final digit to break Luhn. *)
        let last = c.[String.length c - 1] in
        let flipped =
          Char.chr (Char.code '0' + ((Char.code last - Char.code '0' + 5) mod 10))
        in
        String.mapi
          (fun i ch -> if i = String.length c - 1 then flipped else ch)
          c
      in
      if Autotype_core.Synthesis.validate syn bad then
        Alcotest.failf "accepted Luhn-invalid %S" bad
    done;
    (* Valid UPC-A codes (12-digit GS1) are not credit cards. *)
    for _ = 1 to 10 do
      let upc = Semtypes.Generators.upca rng in
      if Autotype_core.Synthesis.validate syn upc then
        Alcotest.failf "accepted UPC %S as credit card" upc
    done

let test_dnf_e_stricter_than_concise () =
  (* DNF-E accepts a subset of what the concise DNF accepts. *)
  let ty = Semtypes.Registry.find_exn "ipv4" in
  let positives = Semtypes.Registry.positive_examples ~n:20 ~seed:11 ty in
  let outcome =
    Autotype_core.Pipeline.synthesize ~index:(Corpus.search_index ())
      ~query:"IPv4" ~positives ()
  in
  match Autotype_core.Pipeline.best outcome with
  | None -> Alcotest.fail "no ipv4 validator"
  | Some syn ->
    let rng = Semtypes.Generators.make_rng 4 in
    let inputs =
      List.init 30 (fun i ->
          if i mod 2 = 0 then Semtypes.Generators.ipv4 rng
          else Semtypes.Generators.wild_cell rng)
    in
    List.iter
      (fun input ->
        let extended = Autotype_core.Synthesis.validate syn input in
        let concise = Autotype_core.Synthesis.validate_concise syn input in
        if extended && not concise then
          Alcotest.failf "DNF-E accepted %S but concise DNF did not" input)
      inputs

let suite =
  [
    ("harvest card brand", `Quick, test_harvest_card_brand);
    ("harvest filters", `Quick, test_harvest_filters);
    ("transformation table shape", `Quick, test_to_table_shape);
    ("validator rejects near-miss types", `Slow,
     test_synthesized_validator_rejects_kinds);
    ("DNF-E is at least as strict as concise", `Slow,
     test_dnf_e_stricter_than_concise);
  ]
