(** Tests for the evaluation layer: IR metrics and the benchmark
    machinery. *)

module M = Eval.Metrics

let rel i q = { M.intention = i; quality = q }

let test_precision_at_k () =
  let ranked = [ rel true 1.0; rel false 1.0; rel true 0.9; rel true 0.3 ] in
  Alcotest.(check (float 1e-9)) "p@1" 1.0 (M.precision_at_k ranked 1);
  Alcotest.(check (float 1e-9)) "p@2" 0.5 (M.precision_at_k ranked 2);
  (* rel = I·Q: the 4th item intends the type but fails unit tests. *)
  Alcotest.(check (float 1e-9)) "p@4" 0.5 (M.precision_at_k ranked 4);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (M.precision_at_k [] 3)

let test_ndcg () =
  (* Perfect ranking has NDCG 1. *)
  let perfect = [ rel true 1.0; rel true 0.8; rel false 0.9 ] in
  Alcotest.(check (float 1e-9)) "perfect" 1.0 (M.ndcg_at_p perfect 3);
  (* Swapping the best to the bottom lowers NDCG strictly. *)
  let swapped = [ rel false 0.9; rel true 0.8; rel true 1.0 ] in
  let v = M.ndcg_at_p swapped 3 in
  Alcotest.(check bool) "worse ranking, lower ndcg" true (v < 1.0 && v > 0.0)

let test_relative_recall () =
  let a = [ ("f1", rel true 1.0); ("f2", rel true 1.0) ] in
  let b = [ ("f1", rel true 1.0); ("f3", rel false 1.0) ] in
  let recalls = M.relative_recall ~pool_k:7 [ ("A", a); ("B", b) ] in
  (* Pool = {f1, f2}; A finds both, B finds f1 only. *)
  Alcotest.(check (float 1e-9)) "A recall" 1.0 (List.assoc "A" recalls);
  Alcotest.(check (float 1e-9)) "B recall" 0.5 (List.assoc "B" recalls)

let test_quality_score () =
  Alcotest.(check (float 1e-9)) "perfect" 1.0
    (M.quality_score ~pass_pos:10 ~n_pos:10 ~reject_neg:100 ~n_neg:100);
  Alcotest.(check (float 1e-9)) "accepts everything" 0.5
    (M.quality_score ~pass_pos:10 ~n_pos:10 ~reject_neg:0 ~n_neg:100);
  Alcotest.(check (float 1e-9)) "rejects everything" 0.5
    (M.quality_score ~pass_pos:0 ~n_pos:10 ~reject_neg:100 ~n_neg:100)

let test_f_score () =
  let prf = { M.tp = 8; fp = 2; fn = 2 } in
  Alcotest.(check (float 1e-9)) "precision" 0.8 (M.precision prf);
  Alcotest.(check (float 1e-9)) "recall" 0.8 (M.recall prf);
  Alcotest.(check (float 1e-9)) "f1" 0.8 (M.f_score prf);
  let zero = { M.tp = 0; fp = 0; fn = 0 } in
  Alcotest.(check (float 1e-9)) "empty f1" 0.0 (M.f_score zero)

let test_negative_pool_is_truly_negative () =
  let ty = Semtypes.Registry.find_exn "credit-card" in
  let pool = Eval.Benchmark.negative_test_pool ~n:100 ~seed:3 ty in
  Alcotest.(check int) "pool size" 100 (List.length pool);
  let validate = Option.get ty.Semtypes.Registry.validator in
  List.iter
    (fun v ->
      if validate v then Alcotest.failf "pool contains a valid card: %S" v)
    pool

let test_benchmark_single_type () =
  let ty = Semtypes.Registry.find_exn "aba-routing" in
  let r = Eval.Benchmark.run_type ty in
  Alcotest.(check bool) "candidates found" true (r.Eval.Benchmark.n_candidates > 0);
  let graded =
    List.assoc Autotype_core.Ranking.DNF_S r.Eval.Benchmark.per_method
  in
  (match graded with
   | top :: _ ->
     Alcotest.(check bool) "top-1 relevant" true
       (M.is_relevant top.Eval.Benchmark.relevance)
   | [] -> Alcotest.fail "empty ranking");
  Alcotest.(check bool) "relevant functions counted" true
    (r.Eval.Benchmark.n_relevant_found >= 1)

let prop_ndcg_bounded =
  QCheck.Test.make ~count:200 ~name:"NDCG in [0, 1]"
    QCheck.(list_of_size (QCheck.Gen.int_range 0 10)
              (pair bool (QCheck.float_range 0.0 1.0)))
    (fun items ->
      let ranked = List.map (fun (i, q) -> rel i (Float.abs q)) items in
      let v = M.ndcg_at_p ranked 7 in
      v >= 0.0 && v <= 1.0 +. 1e-9)

let prop_precision_monotone_pool =
  QCheck.Test.make ~count:200 ~name:"P@K counts only above-floor relevance"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 10) (QCheck.float_range 0.0 1.0))
    (fun qs ->
      let ranked = List.map (fun q -> rel true (Float.abs q)) qs in
      let k = List.length ranked in
      let expected =
        float_of_int
          (List.length (List.filter (fun q -> Float.abs q > 0.5) qs))
        /. float_of_int k
      in
      Float.abs (M.precision_at_k ranked k -. expected) < 1e-9)

let suite =
  [
    ("precision@k", `Quick, test_precision_at_k);
    ("ndcg", `Quick, test_ndcg);
    ("relative recall pooling", `Quick, test_relative_recall);
    ("quality score", `Quick, test_quality_score);
    ("f-score", `Quick, test_f_score);
    ("negative test pool", `Quick, test_negative_pool_is_truly_negative);
    ("benchmark single type", `Slow, test_benchmark_single_type);
    QCheck_alcotest.to_alcotest prop_ndcg_bounded;
    QCheck_alcotest.to_alcotest prop_precision_monotone_pool;
  ]
